package dataflow

import (
	"go/types"
)

// Mask is a set of taint origins carried by a value. Bits 0..55 mark
// "derived from parameter i" (used while summarizing a function
// bottom-up); the top bits mark concrete nondeterminism sources.
type Mask uint64

const (
	// Order taints values whose content depends on map iteration order
	// (or any other unordered traversal). Sorting kills it.
	Order Mask = 1 << 62
	// Value taints values derived from a nondeterministic quantity: the
	// wall clock, pointer identity, or unseeded randomness.
	Value Mask = 1 << 63

	// maxParams bounds the parameter bits; parameters beyond this are
	// conservatively ignored by summaries.
	maxParams = 56
)

// ParamBit returns the mask bit for parameter index i (receiver = 0 for
// methods), or 0 if i is out of summary range.
func ParamBit(i int) Mask {
	if i < 0 || i >= maxParams {
		return 0
	}
	return Mask(1) << uint(i)
}

// Params returns only the parameter-derived bits of m.
func (m Mask) Params() Mask { return m &^ (Order | Value) }

// Sources returns only the concrete source bits of m.
func (m Mask) Sources() Mask { return m & (Order | Value) }

// String names the mask's source bits for diagnostics.
func (m Mask) String() string {
	switch {
	case m&Order != 0 && m&Value != 0:
		return "order- and value-nondeterministic"
	case m&Order != 0:
		return "map-order-dependent"
	case m&Value != 0:
		return "value-nondeterministic"
	default:
		return "untainted"
	}
}

// TaintKey addresses one taintable cell: a whole variable (Field == "")
// or one named field of a struct-typed variable. Field granularity is
// depth one — `s.Stats.Hits` taints cell {s, "Stats"} — which is as deep
// as the simulator's value flow ever nests before a whole-struct copy.
type TaintKey struct {
	// Var is the variable the cell belongs to.
	Var *types.Var
	// Field names the struct field, or "" for the whole value.
	Field string
}

// Taint maps taintable cells to their taint masks. It is the fact type
// of detflow's intraprocedural pass. For a struct variable the whole-
// value cell {v, ""} and per-field cells {v, F} coexist: reading v.F
// observes both (a whole-struct overwrite taints every field), writing
// v.F updates only its own cell, and overwriting v clears all cells.
type Taint map[TaintKey]Mask

// TaintLattice is the join-semilattice over Taint facts.
type TaintLattice struct{}

// Bottom returns the empty taint environment.
func (TaintLattice) Bottom() Taint { return nil }

// Join unions two environments, or-ing masks of shared variables.
func (TaintLattice) Join(a, b Taint) Taint {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(Taint, len(a)+len(b))
	for v, m := range a {
		out[v] = m
	}
	for v, m := range b {
		out[v] |= m
	}
	return out
}

// Equal reports environment equality (same variables, same masks;
// zero-mask entries count as absent).
func (TaintLattice) Equal(a, b Taint) bool {
	for v, m := range a {
		if m != 0 && b[v] != m {
			return false
		}
	}
	for v, m := range b {
		if m != 0 && a[v] != m {
			return false
		}
	}
	return true
}

// Clone copies a taint environment for in-place transfer functions.
func (t Taint) Clone() Taint {
	if t == nil {
		return nil
	}
	out := make(Taint, len(t))
	for v, m := range t {
		out[v] = m
	}
	return out
}

// Of returns the taint observed by reading v as a whole value: the
// union of its whole-value cell and every per-field cell, since a copy
// of the struct carries every field along.
func (t Taint) Of(v *types.Var) Mask {
	m := t[TaintKey{Var: v}]
	for k, km := range t {
		if k.Var == v && k.Field != "" {
			m |= km
		}
	}
	return m
}

// OfField returns the taint observed by reading v.field: the field's
// own cell plus the whole-value cell (a whole-struct write reaches
// every field).
func (t Taint) OfField(v *types.Var, field string) Mask {
	return t[TaintKey{Var: v}] | t[TaintKey{Var: v, Field: field}]
}

// ClearVar removes the whole-value cell and every per-field cell of v —
// the kill of a whole-variable overwrite.
func (t Taint) ClearVar(v *types.Var) {
	for k := range t {
		if k.Var == v {
			delete(t, k)
		}
	}
}

// FnSummary records how taint moves through one function, computed
// bottom-up over the call graph and exported as a framework fact keyed
// by the function's types.Func.FullName(). Param bits in Return mean
// "the result carries whatever taint that argument carried"; source
// bits mean the function introduces that taint itself. Sink, when
// non-zero, means the function forwards its arguments into a
// determinism sink (stats, table output, victim choice, cache hash),
// so tainted arguments should be reported at the call site.
type FnSummary struct {
	// Return is the taint of the function's results, as a function of
	// its own sources (Order/Value bits) and its parameters (param
	// bits).
	Return Mask
	// ReturnFields refines Return for struct-typed results: the taint of
	// each named field of the (single) result, keyed by field name, as a
	// function of the callee's sources and parameters. A field absent
	// from the map carries only Return's whole-value taint. Callers that
	// bind the result to a variable seed per-field cells from this map,
	// so one nondeterministic field in a returned struct no longer taints
	// its clean siblings across the call.
	ReturnFields map[string]Mask
	// Sink has param bit i set when argument i flows into a
	// determinism-sensitive sink inside the callee.
	Sink Mask
	// SinkWhat describes the sink for diagnostics (e.g. "Stats field",
	// "table output", "victim selection", "cache key").
	SinkWhat string
}
