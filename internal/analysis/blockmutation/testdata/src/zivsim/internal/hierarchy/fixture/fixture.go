// Package fixture exercises blockmutation from outside the owning
// package, against the real zivsim/internal/core types.
package fixture

import (
	"zivsim/internal/core"
	"zivsim/internal/directory"
)

// Smuggle mutates a copy of an LLC block: a silent no-op that the
// analyzer treats as a bypass attempt.
func Smuggle(l *core.LLC, loc directory.Location) core.Block {
	b := l.BlockAt(loc)
	b.Valid = false   // want `direct write to core\.Block\.Valid outside zivsim/internal/core`
	b.NotInPrC = true // want `direct write to core\.Block\.NotInPrC outside zivsim/internal/core`
	return b
}

// Forge builds a Block value field by field.
func Forge(addr uint64) core.Block {
	var b core.Block
	b.Addr = addr // want `direct write to core\.Block\.Addr outside zivsim/internal/core`
	return b
}

// Sanctioned drives LLC state through the accessor API and touches only
// unguarded fields of copies — nothing to flag.
func Sanctioned(l *core.LLC, loc directory.Location, addr uint64) bool {
	b := l.BlockAt(loc)
	b.Dirty = true
	b.LikelyDead = false
	return l.MarkDirty(addr)
}
