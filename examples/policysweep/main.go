// Policysweep: compares the LLC replacement policies (LRU, Hawkeye, and the
// offline MIN oracle) on the same mix, reporting LLC misses and — the
// paper's Fig. 2 observation — how many inclusion victims each generates.
// Policies that approach MIN's decisions victimize recently used blocks in
// circular patterns, and recently used blocks are exactly the ones resident
// in the private caches.
package main

import (
	"fmt"

	"zivsim"
)

func main() {
	const (
		cores   = 8
		l2      = 512 << 10
		scale   = 8
		warmup  = 20_000
		measure = 80_000
		seed    = 5
	)

	mix := zivsim.Mix{Name: "sweep", Apps: []string{
		"circ.llc.a", "circ.llc.b", "circ.llc.c", "wset.llc.a",
		"hot.fit.a", "hot.mid.a", "stream.a", "rand.a",
	}}

	fmt.Printf("%-10s %12s %12s %18s %14s\n", "policy", "LLC misses", "LLC hits", "inclusion victims", "aggregate IPC")
	for _, pol := range []zivsim.PolicyKind{zivsim.PolicyLRU, zivsim.PolicyHawkeye, zivsim.PolicyMIN} {
		cfg := zivsim.DefaultConfig(cores, l2, scale)
		cfg.Policy = pol
		p := zivsim.Params{
			L2Bytes:       uint64(cfg.L2Bytes),
			LLCShareBytes: uint64(cfg.LLCBytes / cores),
			BaseL2Bytes:   uint64(cfg.L2Bytes),
		}
		m := zivsim.NewMachine(cfg, zivsim.BuildMix(mix, p, seed), warmup, measure)
		m.Run()
		fmt.Printf("%-10v %12d %12d %18d %14.4f\n",
			pol, m.LLC().Stats.Misses, m.LLC().Stats.Hits,
			m.InclusionVictimTotal(), zivsim.Throughput(m.CoreStats()))
	}

	fmt.Println("\nMIN (and Hawkeye, which learns from it) trades inclusion victims for")
	fmt.Println("hit rate: better replacement decisions victimize recently used blocks,")
	fmt.Println("which are privately cached — the paper's motivation for the ZIV design.")
}
