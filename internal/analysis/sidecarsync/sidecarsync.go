// Package sidecarsync checks that every write to a primary structure is
// followed — on every non-panicking path — by an update of its declared
// sidecar mirrors. The simulator keeps several redundant structures for
// speed (the cache tag sidecar, per-set valid counts, the LLC property
// vectors refreshed by updateSet, the hierarchy's contiguous cycle
// mirror): a write that reaches one and not the other is a silent
// desynchronization that CheckInvariants may only catch long after the
// fact, if at all.
//
// Obligations are declared where the structure lives:
//
//	type bank struct {
//	    //ziv:mirror(tags,validCnt)
//	    //ziv:mirror(updateSet) on Valid,NotInPrC,LikelyDead
//	    blocks []Block
//	    ...
//	}
//
// The first form requires every whole-element write (bk.blocks[i] = x,
// *alias = x, or reassigning the field itself) to be followed by a
// mention of each mirror name. The `on` form additionally constrains
// writes to the listed element fields (b.Valid = true). A mirror is
// "mentioned" when its identifier appears in a statement after the
// write in the same basic block, or anywhere in a block that strictly
// postdominates it — so a mirror update behind an if/else satisfies
// nothing, while one after a DebugChecks panic guard does (panicking
// blocks have no successors and never weaken postdominance).
//
// Accessor functions that hand out interior pointers declare it:
//
//	//ziv:aliases(blocks)
//	func (l *LLC) block(loc directory.Location) *Block { ... }
//
// and writes through their results are checked like direct writes.
// Alias declarations are exported as facts, so a package writing
// through another package's accessor inherits the obligations.
//
// The check is interprocedural within and across packages: an
// unexported function whose receiver- or parameter-based write leaves a
// mirror stale does not report locally — it exports the obligation, and
// every call site must satisfy it instead (the hierarchy's step/Run
// split). Exported functions are API boundaries and must satisfy their
// mirrors internally.
package sidecarsync

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"zivsim/internal/analysis/cfg"
	"zivsim/internal/analysis/framework"
)

// Analyzer is the sidecarsync analysis.
var Analyzer = &framework.Analyzer{
	Name: "sidecarsync",
	Doc:  "writes to mirrored structures must be followed by their sidecar updates on every path",
	Run:  run,
}

// Rule is one //ziv:mirror declaration: Mirrors must follow writes; an
// empty On list binds whole-element writes, a non-empty one binds
// writes to those element fields.
type Rule struct {
	Mirrors []string // sidecar update calls that must follow a write
	On      []string // element fields the rule binds to (empty = whole element)
}

// Fact keys exported per package.
const (
	aliasesKey     = "aliases"
	obligationsKey = "obligations"
)

var (
	mirrorRe  = regexp.MustCompile(`^//\s*ziv:mirror\(([A-Za-z0-9_,\s]+)\)(?:\s+on\s+([A-Za-z0-9_,\s]+))?`)
	aliasesRe = regexp.MustCompile(`^//\s*ziv:aliases\(([A-Za-z0-9_]+)\)`)
)

type analyzer struct {
	pass *framework.Pass
	info *types.Info
	// specs maps an annotated struct field to its rules.
	specs map[*types.Var][]Rule
	// aliasFuncs maps accessor full names (this package) to the rules of
	// the field they alias.
	aliasFuncs map[string][]Rule
	// obligations maps function full names (this package) to mirror
	// names every call site must satisfy.
	obligations map[string][]string

	// Per-function state.
	fn       *types.Func
	params   map[*types.Var]bool
	aliasVar map[*types.Var]aliasInfo
	g        *cfg.Graph
	pd       *cfg.PostDom
	// blockNames[i] holds every identifier mentioned in block i;
	// nodeNames mirrors it per node for same-block suffix scans.
	blockNames []map[string]bool
	nodeNames  [][]map[string]bool
}

type aliasInfo struct {
	rules     []Rule
	baseParam bool
}

func run(pass *framework.Pass) (any, error) {
	a := &analyzer{
		pass:        pass,
		info:        pass.TypesInfo,
		specs:       map[*types.Var][]Rule{},
		aliasFuncs:  map[string][]Rule{},
		obligations: map[string][]string{},
	}
	a.collectSpecs()
	a.collectAliases()

	// Obligations feed call-site checks of other functions in the same
	// package, so iterate to a fixpoint before the reporting pass. The
	// call graph is shallow; a handful of rounds always suffices.
	for round := 0; round < 10; round++ {
		before := obligationFingerprint(a.obligations)
		a.sweep(false)
		if obligationFingerprint(a.obligations) == before {
			break
		}
	}
	a.sweep(true)

	pass.ExportFact(aliasesKey, a.aliasFuncs)
	pass.ExportFact(obligationsKey, a.obligations)
	return nil, nil
}

func obligationFingerprint(ob map[string][]string) string {
	keys := make([]string, 0, len(ob))
	for k := range ob {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(strings.Join(ob[k], ","))
		sb.WriteByte(';')
	}
	return sb.String()
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// collectSpecs finds //ziv:mirror directives on struct fields.
func (a *analyzer) collectSpecs() {
	for _, file := range a.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				rules := fieldRules(field)
				if len(rules) == 0 {
					continue
				}
				for _, name := range field.Names {
					if v, ok := a.info.Defs[name].(*types.Var); ok {
						a.specs[v] = append(a.specs[v], rules...)
					}
				}
			}
			return true
		})
	}
}

func fieldRules(field *ast.Field) []Rule {
	var rules []Rule
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			m := mirrorRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			rules = append(rules, Rule{Mirrors: splitNames(m[1]), On: splitNames(m[2])})
		}
	}
	return rules
}

// collectAliases finds //ziv:aliases directives on accessor functions
// and resolves the aliased field's rules from the receiver type.
func (a *analyzer) collectAliases() {
	for _, file := range a.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var fieldName string
			for _, c := range fd.Doc.List {
				if m := aliasesRe.FindStringSubmatch(c.Text); m != nil {
					fieldName = m[1]
				}
			}
			if fieldName == "" {
				continue
			}
			fn, _ := a.info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if v := a.fieldByName(fn, fieldName); v != nil {
				if rules, ok := a.specs[v]; ok {
					a.aliasFuncs[fn.FullName()] = rules
				}
			}
		}
	}
}

// fieldByName resolves the field an accessor aliases: first a field of
// the receiver's own struct, then — for accessors that reach through a
// contained struct, like the LLC handing out pointers into its banks —
// any annotated field of that name in the package.
func (a *analyzer) fieldByName(fn *types.Func, name string) *types.Var {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Name() == name {
					return st.Field(i)
				}
			}
		}
	}
	var found *types.Var
	for v := range a.specs {
		if v.Name() != name {
			continue
		}
		if found != nil {
			return nil // ambiguous across structs: refuse to guess
		}
		found = v
	}
	return found
}

// sweep analyzes every function; with report set it emits diagnostics,
// otherwise it only accumulates obligations.
func (a *analyzer) sweep(report bool) {
	for _, file := range a.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.analyzeFunc(fd, report)
		}
	}
}

func (a *analyzer) analyzeFunc(fd *ast.FuncDecl, report bool) {
	fn, _ := a.info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	a.fn = fn
	a.params = map[*types.Var]bool{}
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := a.info.Defs[name].(*types.Var); ok {
					a.params[v] = true
				}
			}
		}
	}
	a.collectAliasVars(fd.Body)

	a.g = cfg.New(fd.Body)
	a.pd = a.g.PostDominators()
	a.indexMentions()

	for _, b := range a.g.Blocks {
		for i, n := range b.Nodes {
			a.checkNode(b, i, n, report)
		}
	}
}

// collectAliasVars records variables bound to interior pointers of
// mirrored arrays: v := &base.field[i], or v := accessor(...) for an
// //ziv:aliases accessor.
func (a *analyzer) collectAliasVars(body *ast.BlockStmt) {
	a.aliasVar = map[*types.Var]aliasInfo{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v := a.objOf(id)
			if v == nil {
				continue
			}
			if info, ok := a.aliasOf(as.Rhs[i]); ok {
				a.aliasVar[v] = info
			}
		}
		return true
	})
}

// aliasOf classifies an expression that yields an interior pointer to a
// mirrored structure.
func (a *analyzer) aliasOf(e ast.Expr) (aliasInfo, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return aliasInfo{}, false
		}
		ix, ok := e.X.(*ast.IndexExpr)
		if !ok {
			return aliasInfo{}, false
		}
		if rules, base := a.fieldSpec(ix.X); rules != nil {
			return aliasInfo{rules: rules, baseParam: base}, true
		}
	case *ast.CallExpr:
		if rules, base, ok := a.aliasCall(e); ok {
			return aliasInfo{rules: rules, baseParam: base}, true
		}
	}
	return aliasInfo{}, false
}

// aliasCall matches a call to an //ziv:aliases accessor (local or
// imported) and reports the aliased rules plus whether the receiver
// chain roots in a parameter.
func (a *analyzer) aliasCall(call *ast.CallExpr) (rules []Rule, baseParam, ok bool) {
	var fn *types.Func
	var recv ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ = a.info.Uses[fun.Sel].(*types.Func)
		recv = fun.X
	case *ast.Ident:
		fn, _ = a.info.Uses[fun].(*types.Func)
	}
	if fn == nil {
		return nil, false, false
	}
	full := fn.FullName()
	if r, found := a.aliasFuncs[full]; found {
		rules = r
	} else if fn.Pkg() != nil && fn.Pkg().Path() != a.pass.PkgPath {
		if v, found := a.pass.ImportFact(fn.Pkg().Path(), aliasesKey); found {
			if m, isMap := v.(map[string][]Rule); isMap {
				rules = m[full]
			}
		}
	}
	if rules == nil {
		return nil, false, false
	}
	return rules, recv == nil || a.rootIsParam(recv), true
}

// fieldSpec resolves base.field expressions (bk.blocks) to the field's
// rules and whether the base roots in a parameter.
func (a *analyzer) fieldSpec(e ast.Expr) ([]Rule, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	v := a.fieldVarOf(sel)
	if v == nil {
		return nil, false
	}
	rules, ok := a.specs[v]
	if !ok {
		return nil, false
	}
	return rules, a.rootIsParam(sel.X)
}

func (a *analyzer) fieldVarOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := a.info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

func (a *analyzer) objOf(id *ast.Ident) *types.Var {
	if v, ok := a.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := a.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// rootIsParam unwraps selector/index/star/paren chains and reports
// whether the root identifier is a parameter (or receiver) of the
// current function.
func (a *analyzer) rootIsParam(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.Ident:
			v := a.objOf(x)
			return v != nil && a.params[v]
		default:
			return false
		}
	}
}

// indexMentions records every identifier name per node and per block.
func (a *analyzer) indexMentions() {
	a.blockNames = make([]map[string]bool, len(a.g.Blocks))
	a.nodeNames = make([][]map[string]bool, len(a.g.Blocks))
	for _, b := range a.g.Blocks {
		bn := map[string]bool{}
		nn := make([]map[string]bool, len(b.Nodes))
		for i, n := range b.Nodes {
			names := map[string]bool{}
			// Scan only the header of a RangeStmt node: its body runs in
			// separate blocks and may run zero times, so a mirror update
			// there must not be credited to the header block.
			for _, root := range cfg.ScanRoots(n) {
				ast.Inspect(root, func(c ast.Node) bool {
					if id, ok := c.(*ast.Ident); ok {
						names[id.Name] = true
						bn[id.Name] = true
					}
					return true
				})
			}
			nn[i] = names
		}
		a.blockNames[b.Index] = bn
		a.nodeNames[b.Index] = nn
	}
}

// satisfied reports whether mirror is mentioned at or after (block,
// idx), or in any block strictly postdominating it.
func (a *analyzer) satisfied(b *cfg.Block, idx int, mirror string) bool {
	for i := idx; i < len(b.Nodes); i++ {
		if a.nodeNames[b.Index][i][mirror] {
			return true
		}
	}
	for _, other := range a.g.Blocks {
		if other == b || !a.blockNames[other.Index][mirror] {
			continue
		}
		if a.pd.PostDominates(other, b) {
			return true
		}
	}
	return false
}

// checkNode inspects one CFG node for mirrored writes and obligated
// calls.
func (a *analyzer) checkNode(b *cfg.Block, idx int, n ast.Node, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			a.checkWrite(b, idx, lhs, report)
		}
	case *ast.IncDecStmt:
		a.checkWrite(b, idx, n.X, report)
	}
	// Obligated calls can appear anywhere in the node; RangeStmt body
	// statements are their own nodes, so only its header is scanned.
	for _, root := range cfg.ScanRoots(n) {
		ast.Inspect(root, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			a.checkCall(b, idx, call, report)
			return true
		})
	}
}

// write classification results.
type writeTarget struct {
	rules     []Rule
	sub       string // element field written; "" for whole-element
	fieldName string // primary field name, for diagnostics
	baseParam bool
}

// classify resolves an assignment target to a mirrored write, if any.
func (a *analyzer) classify(lhs ast.Expr) (writeTarget, bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// Direct field write: base.field = ... (scalar mirror, or
		// reassigning the primary slice itself).
		if v := a.fieldVarOf(lhs); v != nil {
			if rules, ok := a.specs[v]; ok {
				return writeTarget{rules: rules, fieldName: v.Name(), baseParam: a.rootIsParam(lhs.X)}, true
			}
		}
		// Element-field write through an alias or an indexed field:
		// alias.Sub = ..., base.field[i].Sub = ..., accessor(...).Sub = ...
		if info, name, ok := a.elementBase(lhs.X); ok {
			return writeTarget{rules: info.rules, sub: lhs.Sel.Name, fieldName: name, baseParam: info.baseParam}, true
		}
	case *ast.StarExpr:
		// Whole-element write through a pointer: *alias = ...
		if info, name, ok := a.elementBase(lhs.X); ok {
			return writeTarget{rules: info.rules, fieldName: name, baseParam: info.baseParam}, true
		}
	case *ast.IndexExpr:
		// Whole-element write: base.field[i] = ...
		if rules, base := a.fieldSpec(lhs.X); rules != nil {
			name := "?"
			if sel, ok := ast.Unparen(lhs.X).(*ast.SelectorExpr); ok {
				name = sel.Sel.Name
			}
			return writeTarget{rules: rules, fieldName: name, baseParam: base}, true
		}
	}
	return writeTarget{}, false
}

// elementBase resolves an expression denoting one element of a mirrored
// structure: an alias variable, an indexed mirrored field, or an alias
// accessor call.
func (a *analyzer) elementBase(e ast.Expr) (aliasInfo, string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := a.objOf(e); v != nil {
			if info, ok := a.aliasVar[v]; ok {
				return info, e.Name, true
			}
		}
	case *ast.IndexExpr:
		if rules, base := a.fieldSpec(e.X); rules != nil {
			name := "?"
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				name = sel.Sel.Name
			}
			return aliasInfo{rules: rules, baseParam: base}, name, true
		}
	case *ast.CallExpr:
		if rules, base, ok := a.aliasCall(e); ok {
			return aliasInfo{rules: rules, baseParam: base}, "accessor result", true
		}
	case *ast.StarExpr:
		return a.elementBase(e.X)
	}
	return aliasInfo{}, "", false
}

// requiredMirrors selects which mirrors a write must see updated.
func requiredMirrors(w writeTarget) []string {
	var req []string
	for _, r := range w.rules {
		if w.sub == "" {
			if len(r.On) == 0 {
				req = append(req, r.Mirrors...)
			}
			continue
		}
		for _, f := range r.On {
			if f == w.sub {
				req = append(req, r.Mirrors...)
				break
			}
		}
	}
	return req
}

func (a *analyzer) checkWrite(b *cfg.Block, idx int, lhs ast.Expr, report bool) {
	w, ok := a.classify(lhs)
	if !ok {
		return
	}
	var missing []string
	for _, m := range requiredMirrors(w) {
		if !a.satisfied(b, idx, m) {
			missing = append(missing, m)
		}
	}
	if len(missing) == 0 {
		return
	}
	desc := "write to " + w.fieldName
	if w.sub != "" {
		desc = "write to " + w.fieldName + "." + w.sub
	}
	a.violation(lhs.Pos(), desc, missing, w.baseParam, report)
}

// checkCall enforces obligations exported by callees: the call site
// counts as the primary write and must be followed by the mirrors the
// callee left stale.
func (a *analyzer) checkCall(b *cfg.Block, idx int, call *ast.CallExpr, report bool) {
	fn := calledFunc(a.info, call)
	if fn == nil {
		return
	}
	full := fn.FullName()
	var mirrors []string
	if m, ok := a.obligations[full]; ok {
		mirrors = m
	} else if fn.Pkg() != nil && fn.Pkg().Path() != a.pass.PkgPath {
		if v, ok := a.pass.ImportFact(fn.Pkg().Path(), obligationsKey); ok {
			if om, isMap := v.(map[string][]string); isMap {
				mirrors = om[full]
			}
		}
	}
	if len(mirrors) == 0 {
		return
	}
	var missing []string
	for _, m := range mirrors {
		if !a.satisfied(b, idx, m) {
			missing = append(missing, m)
		}
	}
	if len(missing) == 0 {
		return
	}
	// A call's obligation bubbles through unexported callers regardless
	// of argument shape: the stale state lives behind the callee.
	a.violation(call.Pos(), "call to "+fn.Name(), missing, true, report)
}

// violation either reports at the site (exported functions, or writes
// whose base is not caller-supplied) or exports the duty to call sites
// of the current unexported function.
func (a *analyzer) violation(pos token.Pos, desc string, missing []string, paramBased, report bool) {
	if paramBased && !a.fn.Exported() {
		full := a.fn.FullName()
		have := map[string]bool{}
		for _, m := range a.obligations[full] {
			have[m] = true
		}
		changed := false
		for _, m := range missing {
			if !have[m] {
				a.obligations[full] = append(a.obligations[full], m)
				changed = true
			}
		}
		if changed {
			sort.Strings(a.obligations[full])
		}
		return
	}
	if report {
		a.pass.Reportf(pos, "%s leaves sidecar %s stale: no update on every subsequent path",
			desc, strings.Join(missing, ", "))
	}
}

// calledFunc resolves a call's static target.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
