// Package scst is the consumer side of sidecarsync's fixtures: it
// writes through scs's exported alias accessor and must inherit the
// Valid→Counters obligation from scs's exported facts.
package scst

import "zivsim/internal/scs"

// MarkGood syncs the mirror right after the aliased write.
func MarkGood(t *scs.Table, i int) {
	e := t.At(i)
	e.Valid = true
	t.Counters++
}

// MarkBad writes Valid across the package boundary and never touches
// Counters.
func MarkBad(t *scs.Table, i int) {
	t.At(i).Valid = true // want `leaves sidecar Counters stale`
}

// BumpGood writes scs's exported primary directly and syncs the mirror:
// the field spec imported from scs is satisfied in the same block.
func BumpGood(h *scs.Hot) {
	h.HotCount++
	h.HotShadow = h.HotCount
}

// BumpBad leaves the mirror of a directly-written imported field stale.
func BumpBad(h *scs.Hot) {
	h.HotCount++ // want `write to HotCount leaves sidecar HotShadow stale`
}
