package char

import (
	"testing"
	"testing/quick"
)

func TestGroupOf(t *testing.T) {
	if g := GroupOf(false, false, 0, false); g != 0 {
		t.Errorf("baseline group = %d, want 0", g)
	}
	if g := GroupOf(false, false, 0, true); g&attrDirty == 0 {
		t.Error("dirty bit not set")
	}
	if g := GroupOf(false, true, 0, false); g&attrLLCHit == 0 {
		t.Error("llc-hit bit not set")
	}
	if g := GroupOf(true, false, 0, false); g&attrPrefetch == 0 {
		t.Error("prefetch bit not set")
	}
	g1 := GroupOf(false, false, 1, false)
	g2 := GroupOf(false, false, 2, false)
	g9 := GroupOf(false, false, 9, false)
	if g1&attrReuse1 == 0 || g1&attrReuse2 != 0 {
		t.Errorf("reuse=1 group = %b", g1)
	}
	if g2&attrReuse1 == 0 || g2&attrReuse2 == 0 {
		t.Errorf("reuse=2 group = %b", g2)
	}
	if g9 != g2 {
		t.Error("reuse counts above 2 should saturate into the same group")
	}
	if int(GroupOf(true, true, 3, true)) >= NumGroups {
		t.Error("group id out of range")
	}
}

func TestEngineInfersDeadWithoutRecalls(t *testing.T) {
	e := NewEngine()
	g := GroupOf(false, false, 0, false)
	for i := 0; i < 100; i++ {
		if !e.OnEvict(g) {
			t.Fatal("group with zero recalls must be inferred dead")
		}
	}
	if e.Dead != 100 || e.Inferences != 100 {
		t.Errorf("stats: %+v", e)
	}
}

func TestEngineRecallsSuppressInference(t *testing.T) {
	e := NewEngine()
	g := GroupOf(false, true, 2, false)
	// Every eviction is recalled: ratio 1 >> tau -> not dead.
	for i := 0; i < 200; i++ {
		e.OnEvict(g)
		e.OnRecall(g)
	}
	if e.OnEvict(g) {
		t.Error("always-recalled group inferred dead")
	}
	if r := e.RecallRatio(g); r < 0.9 {
		t.Errorf("RecallRatio = %v", r)
	}
}

func TestEngineThresholdSensitivity(t *testing.T) {
	// Recall ratio of 1/8: dead under tau=1/64 (d=6)? 1/8 > 1/64 -> not dead.
	// After lowering d to 2 (tau=1/4): 1/8 < 1/4 -> dead.
	e := NewEngine()
	g := uint8(3)
	for i := 0; i < 800; i++ {
		e.OnEvict(g)
		if i%8 == 0 {
			e.OnRecall(g)
		}
	}
	if e.OnEvict(g) {
		t.Fatal("ratio 1/8 inferred dead at tau=1/64")
	}
	e.SetD(2)
	if !e.OnEvict(g) {
		t.Fatal("ratio 1/8 not inferred dead at tau=1/4")
	}
}

func TestSetDOnlyLowers(t *testing.T) {
	e := NewEngine()
	e.SetD(3)
	if e.D() != 3 {
		t.Errorf("D = %d, want 3", e.D())
	}
	e.SetD(5)
	if e.D() != 3 {
		t.Error("SetD raised the threshold")
	}
	e.SetD(0)
	if e.D() != 3 {
		t.Error("SetD accepted d < 1")
	}
	e.ResetD()
	if e.D() != DefaultD {
		t.Errorf("ResetD -> %d", e.D())
	}
}

func TestBankThresholderDecrementAndTRBV(t *testing.T) {
	b := NewBankThresholder(4, 10, 0)
	if b.D() != DefaultD {
		t.Fatalf("initial D = %d", b.D())
	}
	b.OnEmptyPV() // first decrement allowed immediately (paced thereafter)
	if b.D() != DefaultD-1 {
		t.Fatalf("D after first OnEmptyPV = %d", b.D())
	}
	// All cores should receive a piggyback exactly once.
	for c := 0; c < 4; c++ {
		d, pb := b.OnNotice(c)
		if !pb || d != DefaultD-1 {
			t.Errorf("core %d: piggyback=%v d=%d", c, pb, d)
		}
	}
	if _, pb := b.OnNotice(2); pb {
		t.Error("second notice from same core re-piggybacked")
	}
}

func TestBankThresholderPacing(t *testing.T) {
	b := NewBankThresholder(2, 10, 0)
	b.OnEmptyPV()
	b.OnEmptyPV() // too soon: must be ignored
	if b.D() != DefaultD-1 {
		t.Fatalf("pacing violated: D = %d", b.D())
	}
	for i := 0; i < 10; i++ {
		b.OnNotice(0)
	}
	b.OnEmptyPV()
	if b.D() != DefaultD-2 {
		t.Errorf("decrement after pacing interval failed: D = %d", b.D())
	}
	if b.Decrements != 2 {
		t.Errorf("Decrements = %d", b.Decrements)
	}
}

func TestBankThresholderFloor(t *testing.T) {
	b := NewBankThresholder(1, 1, 0)
	for i := 0; i < 20; i++ {
		b.OnNotice(0)
		b.OnEmptyPV()
	}
	if b.D() != 1 {
		t.Errorf("D floor violated: %d", b.D())
	}
}

func TestBankThresholderReset(t *testing.T) {
	b := NewBankThresholder(2, 1, 0)
	b.OnNotice(0)
	b.OnEmptyPV()
	b.Reset()
	if b.D() != DefaultD {
		t.Errorf("D after Reset = %d", b.D())
	}
	if _, pb := b.OnNotice(0); pb {
		t.Error("TRBV not cleared by Reset")
	}
}

func TestBankThresholderPeriodicInternalReset(t *testing.T) {
	b := NewBankThresholder(1, 1, 5)
	b.OnNotice(0)
	b.OnEmptyPV()
	if b.D() != DefaultD-1 {
		t.Fatal("setup failed")
	}
	for i := 0; i < 5; i++ {
		b.OnNotice(0)
	}
	if b.D() != DefaultD {
		t.Errorf("internal periodic reset failed: D = %d", b.D())
	}
}

// Property: inference is monotone in d — if a group is inferred dead at
// exponent d, it is also inferred dead at any larger exponent (smaller tau
// catches strictly fewer groups... inverse: larger tau infers more dead).
func TestInferenceMonotoneProperty(t *testing.T) {
	f := func(evicts, recalls uint16, dSmall, dBig uint8) bool {
		ds := int(dSmall%5) + 1
		db := ds + int(dBig%3) + 1 // db > ds
		mk := func(d int) *Engine {
			e := NewEngine()
			e.d = d
			g := uint8(0)
			for i := 0; i < int(evicts%500); i++ {
				e.OnEvict(g)
			}
			for i := 0; i < int(recalls%500); i++ {
				e.OnRecall(g)
			}
			return e
		}
		// Dead at small tau (big d) implies dead at big tau (small d):
		// (recall << db) < evict implies (recall << ds) < evict.
		eb, es := mk(db), mk(ds)
		deadBigD := eb.OnEvict(0)
		deadSmallD := es.OnEvict(0)
		if deadBigD && !deadSmallD {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
