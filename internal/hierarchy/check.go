package hierarchy

import (
	"fmt"

	"zivsim/internal/cache"
	"zivsim/internal/directory"
)

// CheckInclusion validates the machine-level invariants (tests and
// DebugChecks runs):
//
//  1. Directory precision: a block is tracked with core i as a sharer iff
//     core i's private hierarchy holds it.
//  2. Inclusion (inclusive mode): every privately cached block has an LLC
//     copy — in its home set, or at its directory-recorded relocated
//     location.
//  3. MESI single-writer: a dirty or writable private copy exists only when
//     the directory entry has exactly one sharer.
func (m *Machine) CheckInclusion() error {
	// Forward: private contents are tracked (and included).
	for i := range m.cores {
		c := &m.cores[i]
		var err error
		visit := func(_, _ int, b cache.Block) {
			if err != nil {
				return
			}
			e, _, ok := m.dir.Find(b.Addr)
			if !ok {
				err = fmt.Errorf("core %d holds untracked block %#x", i, b.Addr)
				return
			}
			if !e.Sharers.Has(i) {
				err = fmt.Errorf("core %d holds block %#x but is not a sharer", i, b.Addr)
				return
			}
			if (b.Dirty || b.Writable) && e.Sharers.Count() != 1 {
				err = fmt.Errorf("core %d has writable/dirty copy of shared block %#x", i, b.Addr)
				return
			}
			if m.cfg.Mode == Inclusive {
				if e.Relocated {
					lb := m.llc.BlockAt(e.Loc)
					if !lb.Valid || !lb.Relocated || lb.Addr != b.Addr {
						err = fmt.Errorf("relocated LLC copy of %#x missing at %+v", b.Addr, e.Loc)
					}
				} else if _, hit := m.llc.Probe(b.Addr); !hit {
					err = fmt.Errorf("inclusion violated: block %#x in core %d but not in LLC", b.Addr, i)
				}
			}
		}
		c.l1.ForEachValid(visit)
		c.l2.ForEachValid(visit)
		if err != nil {
			return err
		}
	}
	// Reverse: every tracked sharer actually holds the block.
	var err error
	m.dir.ForEach(func(e *directory.Entry, _ directory.Ptr) {
		if err != nil {
			return
		}
		if e.Sharers.Count() == 0 {
			err = fmt.Errorf("directory entry %#x with no sharers", e.Addr)
			return
		}
		e.Sharers.ForEach(func(id int) {
			if err == nil && !m.privateHolds(&m.cores[id], e.Addr) {
				err = fmt.Errorf("directory lists core %d for %#x but the core does not hold it", id, e.Addr)
			}
		})
	})
	return err
}

// InclusionVictimTotal sums back-invalidation inclusion victims across
// cores (measured segments only).
func (m *Machine) InclusionVictimTotal() uint64 {
	var n uint64
	for i := range m.cores {
		n += m.cores[i].stats.InclusionVictims
	}
	return n
}

// DirInclusionVictimTotal sums directory-eviction-induced victims.
func (m *Machine) DirInclusionVictimTotal() uint64 {
	var n uint64
	for i := range m.cores {
		n += m.cores[i].stats.DirInclusionVictims
	}
	return n
}
