// Package cdx is the consumer side of chandiscipline's cross-package
// fixtures: the imported closer fact makes cdh.Shutdown count as a
// close in the local may-closed flow.
package cdx

import "zivsim/internal/cdh"

// Handoff stops sending before the delegated close: clean.
func Handoff() {
	ch := make(chan int, 1)
	ch <- 1
	cdh.Shutdown(ch)
}

// HandoffBad sends after the imported closer ran.
func HandoffBad() {
	ch := make(chan int, 1)
	cdh.Shutdown(ch)
	ch <- 1 // want `send on channel ch that may already be closed`
}
