// Package dram models a DDR3-style main-memory system: channels, ranks,
// banks and row buffers with open-page policy, plus simple bank-busy
// contention. It is the DRAMSim2 substitute described in DESIGN.md — it
// captures the row-hit/row-miss latency difference and per-access energy,
// which is what the paper's figures consume from the memory model.
package dram

// Config describes the simulated memory system. The defaults mirror the
// paper's Table I: two single-channel DDR3-2133 controllers, two ranks per
// channel, eight banks per rank, 1 KB row buffer, 14-14-14-35 timing.
type Config struct {
	Channels    int
	Ranks       int
	Banks       int
	RowBytes    int
	CPUFreqGHz  float64
	BusFreqMHz  float64
	TCL         int // CAS latency, DRAM cycles
	TRCD        int // RAS-to-CAS delay, DRAM cycles
	TRP         int // row precharge, DRAM cycles
	TRAS        int // row active time, DRAM cycles
	BurstCycles int // data burst length in DRAM cycles (BL=8 -> 4 clock edges)
	QueueDelay  int // fixed controller queueing/scheduling delay in CPU cycles
}

// DefaultConfig returns the paper's Table I memory configuration.
func DefaultConfig() Config {
	return Config{
		Channels:    2,
		Ranks:       2,
		Banks:       8,
		RowBytes:    1024,
		CPUFreqGHz:  4.0,
		BusFreqMHz:  1066.5, // DDR3-2133
		TCL:         14,
		TRCD:        14,
		TRP:         14,
		TRAS:        35,
		BurstCycles: 4,
		QueueDelay:  20,
	}
}

// Memory is the DDR3 model. It is not safe for concurrent use; each
// simulation owns one instance.
type Memory struct {
	cfg       Config
	cpuPerBus float64
	openRow   []int64  // per (channel,rank,bank): open row id, -1 = closed
	busyUntil []uint64 // per bank: CPU cycle at which the bank is free

	Stats Stats
}

// Stats counts memory events.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64 // row-buffer conflict or closed row
}

// Reset clears every counter (end of warmup). The whole-struct assignment
// is the statreset-approved pattern: fields added later are zeroed too.
func (s *Stats) Reset() { *s = Stats{} }

// New builds a memory model from cfg.
func New(cfg Config) *Memory {
	n := cfg.Channels * cfg.Ranks * cfg.Banks
	m := &Memory{
		cfg:       cfg,
		cpuPerBus: cfg.CPUFreqGHz * 1000.0 / cfg.BusFreqMHz,
		openRow:   make([]int64, n),
		busyUntil: make([]uint64, n),
	}
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	return m
}

// bankOf maps a block address to its (flattened) bank index and row id using
// low-order interleaving: channel bits lowest, then bank, then rank.
func (m *Memory) bankOf(blockAddr uint64) (bank int, row int64) {
	a := blockAddr
	ch := int(a % uint64(m.cfg.Channels))
	a /= uint64(m.cfg.Channels)
	bk := int(a % uint64(m.cfg.Banks))
	a /= uint64(m.cfg.Banks)
	rk := int(a % uint64(m.cfg.Ranks))
	a /= uint64(m.cfg.Ranks)
	blocksPerRow := uint64(m.cfg.RowBytes / 64)
	row = int64(a / blocksPerRow)
	bank = (ch*m.cfg.Ranks+rk)*m.cfg.Banks + bk
	return bank, row
}

func (m *Memory) toCPU(busCycles int) uint64 {
	return uint64(float64(busCycles)*m.cpuPerBus + 0.5)
}

// Access performs a read or write of blockAddr issued at CPU cycle now and
// returns the total latency in CPU cycles (including queueing behind a busy
// bank).
func (m *Memory) Access(blockAddr uint64, write bool, now uint64) uint64 {
	if write {
		m.Stats.Writes++
	} else {
		m.Stats.Reads++
	}
	bank, row := m.bankOf(blockAddr)
	var busCycles int
	if m.openRow[bank] == row {
		m.Stats.RowHits++
		busCycles = m.cfg.TCL + m.cfg.BurstCycles
	} else {
		m.Stats.RowMisses++
		if m.openRow[bank] >= 0 {
			busCycles = m.cfg.TRP + m.cfg.TRCD + m.cfg.TCL + m.cfg.BurstCycles
		} else {
			busCycles = m.cfg.TRCD + m.cfg.TCL + m.cfg.BurstCycles
		}
		m.openRow[bank] = row
	}
	lat := m.toCPU(busCycles) + uint64(m.cfg.QueueDelay)
	if m.busyUntil[bank] > now {
		lat += m.busyUntil[bank] - now
	}
	m.busyUntil[bank] = now + lat
	return lat
}

// QueueDepth returns the number of banks still busy at CPU cycle now — an
// instantaneous congestion measure for the observability interval sampler.
func (m *Memory) QueueDepth(now uint64) int {
	n := 0
	for _, b := range m.busyUntil {
		if b > now {
			n++
		}
	}
	return n
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Accesses returns the total access count.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }
