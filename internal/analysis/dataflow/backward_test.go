package dataflow

import (
	"go/ast"
	"go/types"
	"testing"

	"zivsim/internal/analysis/cfg"
)

// livenessTransfer is a textbook live-variables transfer: walk the
// block's nodes last-to-first, kill assigned variables, gen used ones.
// "Live" is encoded as the Value bit of the shared Taint domain.
func livenessTransfer(info *types.Info) func(b *cfg.Block, out Taint) Taint {
	varOf := func(id *ast.Ident) *types.Var {
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		v, _ := info.Uses[id].(*types.Var)
		return v
	}
	gen := func(env Taint, e ast.Expr) Taint {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, used := info.Uses[id].(*types.Var); used {
					if env == nil {
						env = Taint{}
					}
					env[TaintKey{Var: v}] = Value
				}
			}
			return true
		})
		return env
	}
	return func(b *cfg.Block, out Taint) Taint {
		env := out.Clone()
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			switch n := b.Nodes[i].(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v := varOf(id); v != nil {
							delete(env, TaintKey{Var: v})
						}
					}
				}
				for _, rhs := range n.Rhs {
					env = gen(env, rhs)
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					env = gen(env, r)
				}
			case *ast.ExprStmt:
				env = gen(env, n.X)
			case ast.Expr:
				env = gen(env, n)
			}
		}
		return env
	}
}

const liveSrc = `package p

func src() int { return 0 }
func use(int)  {}

func branchL(c bool) {
	x := src()
	y := src()
	if c {
		use(x)
	} else {
		use(y)
	}
}

func deadAfterPanic(c bool) {
	x := src()
	if c {
		panic("boom")
	}
	use(x)
}
`

func runLiveness(t *testing.T, fn string) (*cfg.Graph, *ast.FuncDecl, *types.Info, []Taint, []Taint) {
	t.Helper()
	g, fd, info := buildFunc(t, liveSrc, fn)
	ins, outs := Backward[Taint](g, TaintLattice{}, nil, livenessTransfer(info))
	return g, fd, info, ins, outs
}

func TestBackwardLivenessJoinsBranches(t *testing.T) {
	g, fd, info, _, outs := runLiveness(t, "branchL")
	x := lookupVar(t, info, fd, "x")
	y := lookupVar(t, info, fd, "y")
	entryOut := outs[g.Entry.Index]
	if entryOut[TaintKey{Var: x}] != Value || entryOut[TaintKey{Var: y}] != Value {
		t.Errorf("branchL: entry out = %v, want both x and y live (union over branches)", entryOut)
	}
}

func TestBackwardPanicBlockStaysBottom(t *testing.T) {
	g, fd, info, ins, outs := runLiveness(t, "deadAfterPanic")
	x := lookupVar(t, info, fd, "x")
	if outs[g.Entry.Index][TaintKey{Var: x}] != Value {
		t.Errorf("deadAfterPanic: x not live at entry out despite use on fallthrough path")
	}
	var panicBlk *cfg.Block
	for _, b := range g.Blocks {
		if b != g.Exit && len(b.Succs) == 0 && len(b.Nodes) > 0 {
			panicBlk = b
		}
	}
	if panicBlk == nil {
		t.Fatal("no panic block found")
	}
	if len(ins[panicBlk.Index]) != 0 || len(outs[panicBlk.Index]) != 0 {
		t.Errorf("panic block facts not Bottom: in=%v out=%v",
			ins[panicBlk.Index], outs[panicBlk.Index])
	}
}

// strSet is a must-analysis fact: the set of names assigned on every
// path from a point to the exit. Bottom is the universe (top=true), so
// unexplored and panicking paths constrain nothing — the same vacuity
// postdominance gives panic paths.
type strSet struct {
	top bool
	m   map[string]bool
}

type mustLat struct{}

func (mustLat) Bottom() strSet { return strSet{top: true} }

func (mustLat) Join(a, b strSet) strSet {
	if a.top {
		return b
	}
	if b.top {
		return a
	}
	out := map[string]bool{}
	for k := range a.m {
		if b.m[k] {
			out[k] = true
		}
	}
	return strSet{m: out}
}

func (mustLat) Equal(a, b strSet) bool {
	if a.top != b.top || len(a.m) != len(b.m) {
		return false
	}
	for k := range a.m {
		if !b.m[k] {
			return false
		}
	}
	return true
}

// mustAssignTransfer adds every assigned identifier name to the fact
// ("on every path from here, these names get written").
func mustAssignTransfer(b *cfg.Block, out strSet) strSet {
	if out.top {
		return out // everything is already in the set
	}
	env := map[string]bool{}
	for k := range out.m {
		env[k] = true
	}
	for _, n := range b.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				env[id.Name] = true
			}
		}
	}
	return strSet{m: env}
}

const mustSrc = `package p

func mustBoth(c bool) {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	_ = x
}

func mustOne(c bool) {
	y := 0
	if c {
		y = 1
	}
	_ = y
}

func mustGuard(c bool) {
	z := 0
	if c {
		panic("no")
	}
	z = 1
	_ = z
}
`

func mustOutAtEntry(t *testing.T, fn string) strSet {
	t.Helper()
	g, _, _ := buildFunc(t, mustSrc, fn)
	_, outs := Backward[strSet](g, mustLat{}, strSet{m: map[string]bool{}}, mustAssignTransfer)
	return outs[g.Entry.Index]
}

func TestBackwardMustIntersectsBranches(t *testing.T) {
	if out := mustOutAtEntry(t, "mustBoth"); out.top || !out.m["x"] {
		t.Errorf("mustBoth: x assigned on both branches, want in must-set; got %v", out)
	}
	if out := mustOutAtEntry(t, "mustOne"); out.top || out.m["y"] {
		t.Errorf("mustOne: y assigned on one branch only, must not be in must-set; got %v", out)
	}
}

func TestBackwardMustPanicVacuity(t *testing.T) {
	// The panic arm's fact stays Bottom (= universe), so the
	// intersection at the guard is decided by the surviving path alone:
	// z is still must-assigned even though the panic arm never writes it.
	if out := mustOutAtEntry(t, "mustGuard"); out.top || !out.m["z"] {
		t.Errorf("mustGuard: z must-assigned on the non-panicking path, want in must-set; got %v", out)
	}
}
