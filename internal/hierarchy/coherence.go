package hierarchy

import (
	"fmt"

	"zivsim/internal/core"
	"zivsim/internal/directory"
	"zivsim/internal/energy"
	"zivsim/internal/obs"
	"zivsim/internal/policy"
)

// accessResult flags what a memory access did below the L1.
type accessResult struct {
	l2Hit   bool
	llcHit  bool // includes relocated-block hits
	llcMiss bool
	c2c     bool // non-inclusive cache-to-cache forward
	mem     bool
}

// inMeasured reports whether core id is inside its measured segment.
func (m *Machine) inMeasured(id int) bool {
	c := &m.cores[id]
	return !c.done && c.refIdx >= m.warmupRefs
}

// downgradePrivate clears write permission (and collects dirty data) from
// core id's copies of blockAddr, for a read by another core.
func (m *Machine) downgradePrivate(id int, blockAddr uint64) (wasDirty bool) {
	c := &m.cores[id]
	if w, hit := c.l1.Lookup(blockAddr); hit {
		b := c.l1.Block(c.l1.SetIndex(blockAddr), w)
		wasDirty = wasDirty || b.Dirty
		b.Dirty = false
		b.Writable = false
	}
	if w, hit := c.l2.Lookup(blockAddr); hit {
		b := c.l2.Block(c.l2.SetIndex(blockAddr), w)
		wasDirty = wasDirty || b.Dirty
		b.Dirty = false
		b.Writable = false
	}
	return wasDirty
}

// setWritable grants write permission on core id's copies of blockAddr.
func (m *Machine) setWritable(id int, blockAddr uint64) {
	c := &m.cores[id]
	if w, hit := c.l1.Lookup(blockAddr); hit {
		c.l1.Block(c.l1.SetIndex(blockAddr), w).Writable = true
	}
	if w, hit := c.l2.Lookup(blockAddr); hit {
		c.l2.Block(c.l2.SetIndex(blockAddr), w).Writable = true
	}
}

// joinSharers updates the directory entry for an access by core c, running
// the MESI actions: writes invalidate other sharers (coherence
// invalidations, not inclusion victims); reads downgrade an exclusive owner
// and merge its dirty data into the LLC copy. It returns whether core c's
// new copy is writable.
func (m *Machine) joinSharers(c *coreState, e *directory.Entry, write bool, blockAddr uint64) (writable bool) {
	if write {
		e.Sharers.ForEach(func(other int) {
			if other == c.id {
				return
			}
			present, dirty := m.dropPrivate(&m.cores[other], blockAddr)
			if present {
				m.CoherenceInvals++
			}
			if dirty {
				m.mergeDirty(e, blockAddr)
			}
		})
		e.Sharers = directory.Sharers{}
		e.Sharers.Set(c.id)
		e.State = directory.Modified
		return true
	}
	if (e.State == directory.Modified || e.State == directory.Exclusive) && e.Sharers.Count() == 1 {
		owner := e.Sharers.Only()
		if owner != c.id {
			if m.ring != nil {
				m.ring.Record(obs.EvCohDowngrade, int16(owner), int16(m.llc.BankOf(blockAddr)), blockAddr, 0)
			}
			if m.downgradePrivate(owner, blockAddr) {
				m.mergeDirty(e, blockAddr)
			}
		}
	}
	e.Sharers.Set(c.id)
	if e.Sharers.Count() > 1 {
		e.State = directory.Shared
	}
	return e.Sharers.Count() == 1 && e.State != directory.Shared
}

// mergeDirty folds a private dirty copy's data into the block's LLC copy
// (relocated or not); if the LLC no longer holds it (non-inclusive), the
// data goes to memory.
func (m *Machine) mergeDirty(e *directory.Entry, blockAddr uint64) {
	if e.Relocated {
		m.llc.MarkDirtyAt(e.Loc)
		return
	}
	if !m.llc.MarkDirty(blockAddr) {
		if m.cfg.Mode == Inclusive {
			panic(fmt.Sprintf("hierarchy: inclusive LLC missing block %#x on dirty merge", blockAddr))
		}
		m.memWriteback(0, blockAddr)
	}
}

// upgrade obtains write permission for core c's resident copy of blockAddr
// (a store to a non-writable private line) and returns the added latency.
func (m *Machine) upgrade(c *coreState, blockAddr uint64) uint64 {
	bank := m.llc.BankOf(blockAddr)
	lat := m.mesh.RoundTrip(c.id, bank) + uint64(m.cfg.LLCTagLat)
	m.meter.Add(energy.MeshHop, uint64(2*m.mesh.Hops(c.id, bank)))
	m.meter.Add(energy.DirLookup, 1)
	e, _ := m.dir.Lookup(blockAddr)
	if e == nil {
		panic(fmt.Sprintf("hierarchy: upgrade for untracked block %#x", blockAddr))
	}
	m.joinSharers(c, e, true, blockAddr)
	m.setWritable(c.id, blockAddr)
	return lat
}

// handleDirSpill retargets a relocated block's tag-encoded directory
// pointer after ZeroDEV moved its entry into the overflow structure.
func (m *Machine) handleDirSpill(spilled directory.Entry) {
	if spilled.Valid && spilled.Relocated {
		m.llc.SetDirPtr(spilled.Loc, m.dir.OverflowPtr(spilled.Addr))
	}
}

// handleDirEviction processes a sparse-directory conflict victim: every
// private copy of the tracked block is force-invalidated (these are
// directory-induced inclusion victims, the effect Fig. 15 studies), and a
// relocated block loses its only locator and dies with it (§III-F).
func (m *Machine) handleDirEviction(ev directory.Entry) {
	anyDirty := false
	ev.Sharers.ForEach(func(id int) {
		present, dirty := m.dropPrivate(&m.cores[id], ev.Addr)
		anyDirty = anyDirty || dirty
		if present && m.inMeasured(id) {
			m.cores[id].stats.DirInclusionVictims++
		}
		if present && m.ring != nil {
			// Arg 1: directory-induced back-invalidation.
			m.ring.Record(obs.EvBackInval, int16(id), int16(m.llc.BankOf(ev.Addr)), ev.Addr, 1)
		}
	})
	if ev.Relocated {
		relocDirty := m.llc.InvalidateRelocated(ev.Loc)
		if anyDirty || relocDirty {
			m.memWriteback(0, ev.Addr)
		}
		return
	}
	if !m.llc.MarkNotInPrC(ev.Addr, anyDirty, false, 0, -1) {
		if m.cfg.Mode == Inclusive {
			panic(fmt.Sprintf("hierarchy: inclusive LLC missing block %#x on directory eviction", ev.Addr))
		}
		if anyDirty {
			m.memWriteback(0, ev.Addr)
		}
	}
}

// handleFillOutcome processes what an LLC fill evicted and/or relocated:
// dirty victims write back to memory; privately cached victims of an
// inclusive LLC are back-invalidated, generating inclusion victims — the
// event the ZIV design eliminates.
func (m *Machine) handleFillOutcome(requester int, out core.FillOutcome) {
	if out.Relocation.Valid {
		m.meter.Add(energy.Relocation, 1)
		m.meter.Add(energy.DirUpdate, 1)
		if out.Relocation.CrossBank {
			m.meter.Add(energy.MeshHop, 2)
		}
		if m.obsv != nil {
			m.obsv.OnRelocation(out.Relocation.Depth)
		}
	}
	ev := &out.Evicted
	if !ev.Valid {
		return
	}
	if ev.InPrC && m.cfg.Mode == Inclusive {
		anyDirty := ev.Dirty
		if e, p, ok := m.dir.Find(ev.Addr); ok {
			e.Sharers.ForEach(func(id int) {
				present, dirty := m.dropPrivate(&m.cores[id], ev.Addr)
				anyDirty = anyDirty || dirty
				if present && m.inMeasured(id) {
					m.cores[id].stats.InclusionVictims++
				}
				if present && m.ring != nil {
					// Arg 0: LLC-eviction inclusion victim.
					m.ring.Record(obs.EvBackInval, int16(id), int16(m.llc.BankOf(ev.Addr)), ev.Addr, 0)
				}
			})
			m.dir.Free(p)
		}
		if anyDirty {
			m.memWriteback(requester, ev.Addr)
		}
		return
	}
	// Non-inclusive mode (or a victim with no private copies): no
	// back-invalidation; the directory keeps tracking private copies.
	if ev.Dirty {
		m.memWriteback(requester, ev.Addr)
	}
}

// llcTransaction performs the shared-LLC part of a miss from core c's
// private hierarchy: parallel LLC + sparse-directory lookup, MESI actions,
// the fill flow with victim handling, and private-cache fills. It returns
// the latency charged to the core.
func (m *Machine) llcTransaction(c *coreState, blockAddr uint64, write bool, meta policy.Meta, res *accessResult) uint64 {
	bank := m.llc.BankOf(blockAddr)
	hops := m.mesh.Hops(c.id, bank)
	lat := m.mesh.RoundTrip(c.id, bank) + uint64(m.cfg.LLCTagLat)
	m.meter.Add(energy.MeshHop, uint64(2*hops))
	m.meter.Add(energy.LLCTagLookup, 1)
	m.meter.Add(energy.DirLookup, 1)

	// CHAR recall attribution must read the block's state before the access
	// clears it (§III-D6).
	if m.charEngines != nil {
		if loc, hit := m.llc.Probe(blockAddr); hit {
			if b := m.llc.BlockAt(loc); b.NotInPrC && b.EvictCore >= 0 {
				m.charEngines[b.EvictCore].OnRecall(b.CharGroup)
			}
		}
	}

	e, _ := m.dir.Lookup(blockAddr)

	if _, hit := m.llc.Access(blockAddr, meta); hit {
		lat += uint64(m.cfg.LLCDataLat)
		m.meter.Add(energy.LLCDataRead, 1)
		res.llcHit = true
		writable := write
		if e == nil {
			st := directory.Exclusive
			if write {
				st = directory.Modified
			}
			_, evicted, spilled := m.dir.Allocate(blockAddr, c.id, st)
			if evicted.Valid {
				m.handleDirEviction(evicted)
			}
			m.handleDirSpill(spilled)
			writable = true
		} else {
			writable = m.joinSharers(c, e, write, blockAddr)
		}
		m.fillL2(c, blockAddr, false, writable, meta, l2Meta{llcHit: true})
		m.fillL1(c, blockAddr, write, writable, meta)
		return lat
	}

	if e != nil {
		if e.Relocated {
			// Inclusive ZIV: the block lives in a relocation set, reached
			// through the directory with a small latency delta (§III-C1).
			lat += uint64(m.cfg.LLCDataLat + m.cfg.RelocAccessDelta)
			m.meter.Add(energy.LLCDataRead, 1)
			m.llc.AccessRelocated(e.Loc, meta)
			res.llcHit = true
			writable := m.joinSharers(c, e, write, blockAddr)
			m.fillL2(c, blockAddr, false, writable, meta, l2Meta{llcHit: true})
			m.fillL1(c, blockAddr, write, writable, meta)
			return lat
		}
		if m.cfg.Mode == Inclusive {
			panic(fmt.Sprintf("hierarchy: inclusion violated — directory hit, LLC miss for %#x", blockAddr))
		}
		// The non-inclusive "fourth case": a sharer core supplies the data
		// (cache-to-cache), and the block is re-allocated in the LLC.
		res.llcMiss = true
		res.c2c = true
		var owner = -1
		e.Sharers.ForEach(func(id int) {
			if owner < 0 && id != c.id {
				owner = id
			}
		})
		if owner < 0 {
			panic(fmt.Sprintf("hierarchy: fourth-case block %#x with no remote sharer", blockAddr))
		}
		lat += m.mesh.RoundTrip(owner, bank) + uint64(m.cfg.L2Latency)
		m.meter.Add(energy.MeshHop, uint64(2*m.mesh.Hops(owner, bank)))
		m.meter.Add(energy.L2Access, 1)
		writable := m.joinSharers(c, e, write, blockAddr)
		out := m.llc.Fill(blockAddr, c.id, false, true, meta, c.cycle)
		m.meter.Add(energy.LLCDataWrite, 1)
		m.handleFillOutcome(c.id, out)
		m.fillL2(c, blockAddr, false, writable, meta, l2Meta{llcHit: false})
		m.fillL1(c, blockAddr, write, writable, meta)
		return lat
	}

	// Full miss: fetch from memory, allocate directory entry then LLC block
	// (Fig. 5 order), then fill the private caches.
	res.llcMiss = true
	res.mem = true
	dramLat := m.mem.Access(blockAddr, false, c.cycle)
	m.meter.Add(energy.DRAMAccess, 1)
	lat += uint64(float64(dramLat) * m.cfg.MLPOverlap)
	st := directory.Exclusive
	if write {
		st = directory.Modified
	}
	_, evicted, spilled := m.dir.Allocate(blockAddr, c.id, st)
	if evicted.Valid {
		m.handleDirEviction(evicted)
	}
	m.handleDirSpill(spilled)
	out := m.llc.Fill(blockAddr, c.id, false, true, meta, c.cycle)
	m.meter.Add(energy.LLCDataWrite, 1)
	m.handleFillOutcome(c.id, out)
	m.fillL2(c, blockAddr, false, true, meta, l2Meta{llcHit: false})
	m.fillL1(c, blockAddr, write, true, meta)
	return lat
}
