package docskip

// The package sits outside the audited import-path prefixes, so its
// undocumented exports produce no diagnostics.

type Bare struct{ Field int }

func Exported() {}

var Stray = 1
