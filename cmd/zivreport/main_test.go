package main

import (
	"strings"
	"testing"
)

func TestConvert(t *testing.T) {
	in := `== Fig. X — demo ==
                          256KB       512KB
I-LRU                    1.0000      1.1000
ZIV-LikelyDead           1.0100      1.2000
note: a range note
(figX in 1s)
`
	var out strings.Builder
	if err := convert(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"### Fig. X — demo",
		"| configuration | 256KB | 512KB |",
		"| I-LRU | 1.0000 | 1.1000 |",
		"| ZIV-LikelyDead | 1.0100 | 1.2000 |",
		"- a range note",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}
}

func TestConvertEmpty(t *testing.T) {
	var out strings.Builder
	if err := convert(strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty input produced output: %q", out.String())
	}
}

func TestConvertMultipleTables(t *testing.T) {
	in := `== A ==
      c1
r1   1.0
(a in 1s)

== B ==
      c1      c2
r2   2.0     3.0
(b in 1s)
`
	var out strings.Builder
	if err := convert(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "### A") || !strings.Contains(got, "### B") {
		t.Fatalf("missing sections:\n%s", got)
	}
	if !strings.Contains(got, "| r2 | 2.0 | 3.0 |") {
		t.Fatalf("second table mis-parsed:\n%s", got)
	}
}
