// The telemetry endpoint. Server is the seed of zivsimd's serving
// surface: /metrics (Prometheus text exposition of the registry),
// /healthz (liveness JSON), and net/http/pprof under /debug/pprof. It
// deliberately owns no goroutines — Serve blocks on the listener and
// Close unblocks it — so the caller spawns and joins in one scope,
// which is the join shape the goleak analyzer proves. cmd/zivsim wires
// it behind -telemetry-addr.
package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server serves the telemetry endpoints for one registry.
type Server struct {
	reg *Registry
	srv *http.Server
}

// NewServer builds a server exposing reg. It owns no listener until
// Serve is called.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg}
	s.srv = &http.Server{Handler: s.Handler()}
	return s
}

// Handler returns the server's route mux: /metrics, /healthz, and the
// pprof family under /debug/pprof/. Exposed separately so tests can
// drive the routes without a socket.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	RegisterRoutes(mux, s.reg, nil)
	return mux
}

// RegisterRoutes mounts the base telemetry endpoints on mux: /metrics
// (Prometheus text exposition of reg), /healthz (liveness/readiness
// JSON) and the pprof family under /debug/pprof/. It is the shared
// mount point for every serving surface — telemetry.Server (zivsim
// -telemetry-addr) and cmd/zivsimd both build their muxes on it.
//
// health, when non-nil, supplies the /healthz status string per
// request; any value other than "ok" is reported with 503 so load
// balancers stop routing to a draining server. A nil health always
// reports "ok".
func RegisterRoutes(mux *http.ServeMux, reg *Registry, health func() string) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteExposition(w, reg); err != nil {
			// The response is already streaming; nothing to do but stop.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		status := "ok"
		if health != nil {
			status = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"status\":%q}\n", status)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve accepts connections on ln until Close; it blocks, returning nil
// on a clean shutdown. The caller owns the goroutine: spawn Serve and
// join it after Close, e.g.
//
//	served := make(chan struct{})
//	go func() { srv.Serve(ln); close(served) }()
//	defer func() { srv.Close(); <-served }()
func (s *Server) Serve(ln net.Listener) error {
	err := s.srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Close immediately closes the listener and any active connections,
// unblocking Serve. Immediate close (rather than graceful shutdown) is
// deliberate: a hanging pprof stream must not keep a finished sweep's
// process alive.
func (s *Server) Close() error {
	return s.srv.Close()
}
