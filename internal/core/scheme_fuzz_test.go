package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllSchemesModelProperty fuzzes every victim-selection scheme through
// the miniature-hierarchy driver and validates the shared invariants:
// the LLC never exceeds capacity, duplicate tags never appear, the
// directory/LLC residency bits agree, and inclusion holds for every
// privately cached block.
func TestAllSchemesModelProperty(t *testing.T) {
	combos := schemeCombos()
	f := func(seed int64, pick uint8) bool {
		c := combos[int(pick)%len(combos)]
		llc, dir := mkLLC(t, c.scheme, c.prop, c.pol)
		d := newDriver(t, llc, dir, 12)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1200; i++ {
			coreID := rng.Intn(4)
			addr := uint64(rng.Intn(100))
			d.access(coreID, addr, uint64(rng.Intn(8))*4)
			if rng.Intn(4) == 0 {
				d.dropPrivate(coreID, addr)
			}
		}
		if err := llc.CheckInvariants(); err != nil {
			t.Logf("scheme %v prop %v: %v", c.scheme, c.prop, err)
			return false
		}
		if llc.ValidCount() > 2*8*4 {
			return false
		}
		if c.scheme == SchemeZIV && d.inclusionVictims != 0 {
			t.Logf("ZIV %v produced %d inclusion victims", c.prop, d.inclusionVictims)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Fatal(err)
	}
}

// TestSchemeVictimQualityOrdering: under identical pressure, the schemes
// that avoid privately cached victims (QBS, SHARP, CHARonBase, ZIV) must
// generate no more inclusion victims than the baseline.
func TestSchemeVictimQualityOrdering(t *testing.T) {
	run := func(scheme Scheme, prop Property) int {
		llc, dir := mkLLC(t, scheme, prop, lruPol)
		d := newDriver(t, llc, dir, 12)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 2500; i++ {
			coreID := rng.Intn(4)
			addr := uint64(rng.Intn(90))
			d.access(coreID, addr, 4)
			if rng.Intn(5) == 0 {
				d.dropPrivate(coreID, addr)
			}
		}
		_ = llc
		return d.inclusionVictims
	}
	base := run(SchemeBaseline, PropNone)
	if base == 0 {
		t.Skip("baseline produced no inclusion victims; pressure too low")
	}
	for _, tc := range []struct {
		name   string
		scheme Scheme
		prop   Property
	}{
		{"QBS", SchemeQBS, PropNone},
		{"SHARP", SchemeSHARP, PropNone},
		{"CHARonBase", SchemeCHARonBase, PropNone},
		{"ZIV", SchemeZIV, PropNotInPrC},
	} {
		got := run(tc.scheme, tc.prop)
		if got > base {
			t.Errorf("%s inclusion victims (%d) exceed baseline (%d)", tc.name, got, base)
		}
		if tc.scheme == SchemeZIV && got != 0 {
			t.Errorf("ZIV inclusion victims = %d, want 0", got)
		}
	}
}

// TestQBSOnHawkeyePromotions: QBS composed with Hawkeye must promote via
// RRPV without touching the predictor (the paper notes QBS composes with
// any policy).
func TestQBSOnHawkeyePromotions(t *testing.T) {
	llc, dir := mkLLC(t, SchemeQBS, PropNone, hawkeyePol)
	d := newDriver(t, llc, dir, 32)
	addrs := conflictAddrs(6)
	for _, a := range addrs[:4] {
		d.access(0, a, 4)
	}
	d.access(0, addrs[4], 4) // all private: QBS promotes then falls back
	if llc.Stats.QBSPromotions == 0 {
		t.Fatal("QBS on Hawkeye never promoted")
	}
	d.check()
}

// TestInPrCEvictionAccounting: the InPrCEvictions counter must equal the
// number of back-invalidation events the driver observed.
func TestInPrCEvictionAccounting(t *testing.T) {
	llc, dir := mkLLC(t, SchemeBaseline, PropNone, lruPol)
	d := newDriver(t, llc, dir, 16)
	rng := rand.New(rand.NewSource(5))
	backInvalEvents := 0
	for i := 0; i < 2000; i++ {
		coreID := rng.Intn(2)
		addr := uint64(rng.Intn(80))
		before := llc.Stats.InPrCEvictions
		d.access(coreID, addr, 4)
		if llc.Stats.InPrCEvictions > before {
			backInvalEvents += int(llc.Stats.InPrCEvictions - before)
		}
	}
	if uint64(backInvalEvents) != llc.Stats.InPrCEvictions {
		t.Fatalf("accounting drift: %d observed vs %d counted", backInvalEvents, llc.Stats.InPrCEvictions)
	}
}
