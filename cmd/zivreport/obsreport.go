// Observability reporting: `zivreport -obs` renders an interval CSV
// (written by `zivsim -obs-interval`) as markdown tables, and
// `zivreport -checktrace` validates Chrome trace JSON against the
// minimal schema Perfetto needs — CI's obs-smoke job gates on it.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"zivsim/internal/obs"
)

// Column indices of obs.IntervalCSVHeader.
const (
	colScope = iota
	colInterval
	colID
	colStartCycle
	colEndCycle
	colRefs
	colInstructions
	colCycles
	colIPC
	colL1Miss
	colL2Miss
	colLLCMiss
	colInclVictims
	colDirInclVictims
	colRelocations
	colCrossBankRelocs
	colAlternateVictims
	colEvictions
	colInPrCEvictions
	colDirEvictions
	colDirSpills
	colDRAMReads
	colDRAMWrites
	colQueueDepth
	numCols
)

// obsReport renders one intervals CSV as three markdown tables: the
// machine-wide interval series, the per-core IPC matrix, and the
// whole-run relocation-depth histogram.
func obsReport(r io.Reader, w io.Writer) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != obs.IntervalCSVHeader {
		return fmt.Errorf("not an intervals CSV (header mismatch)")
	}

	var machine, core, depth [][]string
	for i, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != numCols {
			return fmt.Errorf("line %d: %d columns, want %d", i+2, len(f), numCols)
		}
		switch f[colScope] {
		case "machine":
			machine = append(machine, f)
		case "core":
			core = append(core, f)
		case "depth":
			depth = append(depth, f)
		case "bank":
			// Bank rows feed the Perfetto counter tracks; the markdown
			// report keeps to the machine/core/depth views.
		default:
			return fmt.Errorf("line %d: unknown scope %q", i+2, f[colScope])
		}
	}

	fmt.Fprintf(w, "### Machine intervals\n\n")
	fmt.Fprintf(w, "| interval | cycles | relocations | cross-bank | alternate victims | evictions | dir evictions | dram reads | dram writes | queue |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|---|\n")
	for _, f := range machine {
		fmt.Fprintf(w, "| %s | %s-%s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
			f[colInterval], f[colStartCycle], f[colEndCycle],
			f[colRelocations], f[colCrossBankRelocs], f[colAlternateVictims],
			f[colEvictions], f[colDirEvictions],
			f[colDRAMReads], f[colDRAMWrites], f[colQueueDepth])
	}

	// The per-core matrix: core rows arrive interval-major (every core of
	// interval 0, then interval 1, ...), so one pass groups them.
	maxCore := -1
	for _, f := range core {
		if id, err := strconv.Atoi(f[colID]); err == nil && id > maxCore {
			maxCore = id
		}
	}
	if maxCore >= 0 {
		fmt.Fprintf(w, "\n### Per-core IPC\n\n")
		fmt.Fprintf(w, "| interval |")
		for c := 0; c <= maxCore; c++ {
			fmt.Fprintf(w, " core%d |", c)
		}
		fmt.Fprintf(w, "\n|%s\n", strings.Repeat("---|", maxCore+2))
		for i := 0; i < len(core); i += maxCore + 1 {
			row := core[i : i+min(maxCore+1, len(core)-i)]
			fmt.Fprintf(w, "| %s |", row[0][colInterval])
			for _, f := range row {
				fmt.Fprintf(w, " %s |", f[colIPC])
			}
			fmt.Fprintln(w)
		}
	}

	if len(depth) > 0 {
		var max uint64
		for _, f := range depth {
			if n, err := strconv.ParseUint(f[colRelocations], 10, 64); err == nil && n > max {
				max = n
			}
		}
		fmt.Fprintf(w, "\n### Relocation-depth histogram\n\n")
		fmt.Fprintf(w, "| depth | blocks | |\n|---|---|---|\n")
		for _, f := range depth {
			n, err := strconv.ParseUint(f[colRelocations], 10, 64)
			if err != nil {
				return fmt.Errorf("bad depth count %q: %v", f[colRelocations], err)
			}
			bar := int(n * 40 / max)
			if bar == 0 && n > 0 {
				bar = 1
			}
			label := f[colID]
			if label == strconv.Itoa(obs.MaxRelocDepth) {
				label += "+"
			}
			fmt.Fprintf(w, "| %s | %d | %s |\n", label, n, strings.Repeat("#", bar))
		}
	}
	return nil
}

// checkedEvent is the minimal trace_event shape checkTrace validates.
// Pointer fields distinguish "absent" from zero.
type checkedEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Pid  *float64 `json:"pid"`
	Tid  *float64 `json:"tid"`
}

// checkTraces validates path — one trace file, or a directory holding
// *.trace.json — and returns how many traces passed.
func checkTraces(path string) (int, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "*.trace.json"))
		if err != nil {
			return 0, err
		}
		if len(files) == 0 {
			return 0, fmt.Errorf("%s: no *.trace.json files", path)
		}
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return 0, err
		}
		if err := checkTrace(data); err != nil {
			return 0, fmt.Errorf("%s: %v", f, err)
		}
	}
	return len(files), nil
}

// checkTrace validates one Chrome trace JSON document: a non-empty
// traceEvents array whose entries carry a name, a known phase, numeric
// pid/tid, and a timestamp on every non-metadata event.
func checkTrace(data []byte) error {
	var f struct {
		TraceEvents []checkedEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("empty traceEvents")
	}
	for i, ev := range f.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("event %d: missing name", i)
		}
		switch ev.Ph {
		case "M", "C", "i", "B", "E", "X":
		default:
			return fmt.Errorf("event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("event %d (%s): missing pid/tid", i, ev.Name)
		}
		if ev.Ph != "M" && ev.Ts == nil {
			return fmt.Errorf("event %d (%s): missing ts", i, ev.Name)
		}
	}
	return nil
}
