package core

import (
	"fmt"
	"math/bits"

	"zivsim/internal/directory"
	"zivsim/internal/obs"
	"zivsim/internal/policy"
)

// pickRS selects the next relocation set from a PV, honouring the
// SelectLowest ablation knob.
//
//ziv:noalloc
func (l *LLC) pickRS(bk *bank, lev level) int {
	if l.cfg.SelectLowest {
		return bk.pvs[lev].Lowest()
	}
	return bk.pvs[lev].NextRS()
}

// oraclePickRS scans up to OracleCandidates eligible relocation sets and
// returns the one holding the NotInPrC block with the furthest next use,
// along with that block's way (§VI future work: oracle-assisted optimal
// relocation victim selection).
func (l *LLC) oraclePickRS(bk *bank) (rs, way int) {
	pv := bk.pvs[levNotInPrC]
	n := l.cfg.OracleCandidates
	if ones := pv.Ones(); ones < n {
		n = ones
	}
	rs, way = -1, -1
	var bestNU uint64
	for i := 0; i < n; i++ {
		cand := pv.NextRS()
		if cand < 0 {
			break
		}
		w, nu := l.oracleVictimIn(bk, cand)
		if w >= 0 && (rs < 0 || nu > bestNU) {
			rs, way, bestNU = cand, w, nu
		}
	}
	return rs, way
}

// oracleVictimIn returns the NotInPrC block of (bank, set) with the furthest
// next use, and that distance.
func (l *LLC) oracleVictimIn(bk *bank, set int) (way int, nextUse uint64) {
	base := set * l.cfg.Ways
	way = -1
	for w := 0; w < l.cfg.Ways; w++ {
		b := &bk.blocks[base+w]
		if !b.Valid || !b.NotInPrC {
			continue
		}
		nu := l.cfg.Oracle.NextUse(b.Addr, l.oracleNow)
		if way < 0 || nu > nextUse {
			way, nextUse = w, nu
		}
	}
	return way, nextUse
}

// zivFill runs the ZIV victim flow (paper §III, Fig. 5) for a fill into a
// full set. If the baseline victim has no private copies it is evicted
// normally. Otherwise the victim must be relocated: the configured priority
// levels are walked in order, and at each level the original set is checked
// first (avoiding relocation by picking an alternate victim in place), then
// the level's property vector supplies a global relocation set via nextRS.
// If every PV in the home bank is empty, one-hop-first cross-bank relocation
// is attempted. The flow guarantees that no eviction ever generates an
// inclusion victim.
//
//ziv:noalloc
func (l *LLC) zivFill(bk *bank, set int, addr uint64, dirty, inPrC bool, m policy.Meta, now uint64) FillOutcome {
	if m.Pos > l.oracleNow {
		l.oracleNow = m.Pos
	}
	victim := l.worstWay(bk, set)
	vb := &bk.blocks[set*l.cfg.Ways+victim]
	if vb.NotInPrC {
		// The baseline victim is not privately cached: a plain eviction is
		// already inclusion-victim free.
		ev := l.evictWay(bk, set, victim)
		l.fillWay(bk, set, victim, addr, dirty, inPrC, m)
		return FillOutcome{
			Loc:     directory.Location{Bank: bk.id, Set: set, Way: victim},
			Evicted: ev,
		}
	}

	for _, lev := range l.levels {
		if lev == levInvalid {
			// The original set has no invalid way (the caller checked); try
			// the global Invalid PV.
			if rs := l.pickRS(bk, levInvalid); rs >= 0 {
				return l.relocate(bk, set, victim, bk, rs, -1, levInvalid, addr, dirty, inPrC, m, now)
			}
			continue
		}
		// Original set first: if it satisfies the property, no relocation is
		// needed — the relocation set's victim-selection algorithm runs on
		// the original set to pick a different victim (§III-D4).
		if l.setSatisfies(bk, set, lev) {
			alt := l.relocVictimWay(bk, set)
			if alt < 0 {
				panic("core: original set satisfies property but has no relocation victim")
			}
			ev := l.evictWay(bk, set, alt)
			l.fillWay(bk, set, alt, addr, dirty, inPrC, m)
			l.Stats.AlternateVictims++
			if l.obs != nil {
				l.obs.Record(obs.EvInclusionAverted, -1, int16(bk.id), addr, uint64(lev))
			}
			return FillOutcome{
				Loc:             directory.Location{Bank: bk.id, Set: set, Way: alt},
				Evicted:         ev,
				AlternateVictim: true,
			}
		}
		if lev == levLikelyDead && bk.pvs[levLikelyDead].Empty() && bk.thresh != nil {
			// A relocation request found the LikelyDeadNotInPrC PV empty:
			// ask the CHAR threshold controller to become more aggressive
			// (§III-D6).
			bk.thresh.OnEmptyPV()
		}
		if lev == levNotInPrC && l.cfg.Property == PropOracleNotInPrC {
			if rs, w := l.oraclePickRS(bk); rs >= 0 {
				return l.relocate(bk, set, victim, bk, rs, w, lev, addr, dirty, inPrC, m, now)
			}
			continue
		}
		if rs := l.pickRS(bk, lev); rs >= 0 {
			return l.relocate(bk, set, victim, bk, rs, -1, lev, addr, dirty, inPrC, m, now)
		}
	}

	// Extremely rare (§III-D1): every block in this bank is privately
	// cached. Relocate to another bank, querying one-hop neighbours first
	// (approximated by ring distance from the home bank). With
	// FillCrossBank, the newly filled block goes to the other bank as a
	// relocated block instead of moving the victim.
	for off := 1; off < l.cfg.Banks; off++ {
		dst := &l.banks[(bk.id+off)%l.cfg.Banks]
		for _, lev := range l.levels {
			if rs := l.pickRS(dst, lev); rs >= 0 {
				if l.cfg.FillCrossBank {
					return l.fillRelocated(bk, dst, rs, lev, addr, dirty, m, now)
				}
				return l.relocate(bk, set, victim, dst, rs, -1, lev, addr, dirty, inPrC, m, now)
			}
		}
	}

	// Last resort: the aggregate private capacity must exceed the LLC for
	// this to happen, which violates the inclusive configuration contract.
	if l.cfg.DebugChecks {
		panic("core: ZIV found no relocation set anywhere — private caches exceed LLC capacity?")
	}
	l.Stats.ForcedInclusions++
	ev := l.evictWay(bk, set, victim)
	l.fillWay(bk, set, victim, addr, dirty, inPrC, m)
	return FillOutcome{
		Loc:     directory.Location{Bank: bk.id, Set: set, Way: victim},
		Evicted: ev,
	}
}

// relocVictimWay picks the victim within a relocation set per §III-E,
// following the configured property's priority chain. Invalid ways are
// handled by the caller. It returns -1 when the set holds no block that can
// be evicted without inclusion victims.
//
//ziv:noalloc
func (l *LLC) relocVictimWay(bk *bank, set int) int {
	order := bk.pol.Rank(set)
	base := set * l.cfg.Ways
	firstWhere := func(pred func(b *Block, w int) bool) int {
		for _, w := range order {
			b := &bk.blocks[base+w]
			if b.Valid && pred(b, w) {
				return w
			}
		}
		return -1
	}
	switch l.cfg.Property {
	case PropNotInPrC, PropLRUNotInPrC:
		// The NotInPrC block closest to the LRU position.
		return firstWhere(func(b *Block, _ int) bool { return b.NotInPrC })
	case PropMaxRRPVNotInPrC:
		// The NotInPrC block with as high an RRPV as possible (the rank
		// order is descending RRPV).
		return firstWhere(func(b *Block, _ int) bool { return b.NotInPrC })
	case PropLikelyDead:
		// LikelyDead closest to LRU, else NotInPrC closest to LRU.
		if w := firstWhere(func(b *Block, _ int) bool { return b.LikelyDead && b.NotInPrC }); w >= 0 {
			return w
		}
		return firstWhere(func(b *Block, _ int) bool { return b.NotInPrC })
	case PropOracleNotInPrC:
		w, _ := l.oracleVictimIn(bk, set)
		return w
	case PropMaxRRPVLikelyDead:
		// NotInPrC at max RRPV (a Hawkeye cache-averse block), else
		// LikelyDead with as high an RRPV as possible, else NotInPrC with as
		// high an RRPV as possible.
		max := bk.rrip.MaxRRPV()
		if w := firstWhere(func(b *Block, w int) bool { return b.NotInPrC && bk.rrip.RRPV(set, w) == max }); w >= 0 {
			return w
		}
		if w := firstWhere(func(b *Block, _ int) bool { return b.LikelyDead && b.NotInPrC }); w >= 0 {
			return w
		}
		return firstWhere(func(b *Block, _ int) bool { return b.NotInPrC })
	}
	return -1
}

// relocate moves the privately cached victim at (home, homeSet, victimWay)
// into the relocation set (dst, rs) chosen at priority level lev, updates
// its sparse-directory entry to the new location, and fills the new block
// into the freed home way. Fig. 5's full flow.
//
//ziv:noalloc
func (l *LLC) relocate(home *bank, homeSet, victimWay int, dst *bank, rs, dstWayOverride int, lev level,
	addr uint64, dirty, inPrC bool, m policy.Meta, now uint64) FillOutcome {

	vb := home.blocks[homeSet*l.cfg.Ways+victimWay] // copy out the victim
	reReloc := vb.Relocated
	depth := vb.RelocDepth
	if depth < ^uint8(0) {
		depth++
	}
	if l.obs != nil {
		l.obs.Record(obs.EvRelocBegin, -1, int16(home.id), vb.Addr, uint64(lev))
		l.obs.Record(obs.EvRelocSetSelect, -1, int16(dst.id), uint64(rs), uint64(lev))
	}

	// Locate the victim's directory entry: a relocated block carries the
	// pointer in its repurposed tag; a first-time relocation looks the entry
	// up by block address (§III-C3).
	var ptr directory.Ptr
	if reReloc {
		ptr = vb.DirPtr
	} else {
		_, p, ok := l.dir.Find(vb.Addr)
		if !ok {
			panic(fmt.Sprintf("core: relocating block %#x with no directory entry", vb.Addr))
		}
		ptr = p
	}

	// Remove the victim from its current location. This is not a
	// replacement mistake (the block stays in the LLC), so the policy sees
	// an invalidation, not an eviction.
	home.pol.OnInvalidate(homeSet, victimWay)
	home.blocks[homeSet*l.cfg.Ways+victimWay] = Block{}
	home.tags[homeSet*l.cfg.Ways+victimWay] = tagNone
	home.validCnt[homeSet]--

	// Find the destination way and evict its occupant if needed.
	var evicted Evicted
	var dstWay int
	if lev == levInvalid {
		dstWay = l.invalidWay(dst, rs)
		if dstWay < 0 {
			panic("core: Invalid PV pointed at a full set")
		}
	} else {
		dstWay = dstWayOverride
		if dstWay < 0 {
			dstWay = l.relocVictimWay(dst, rs)
		}
		if dstWay < 0 {
			panic(fmt.Sprintf("core: %v PV pointed at set with no eligible victim", lev))
		}
		evicted = l.evictWay(dst, rs, dstWay)
		if l.cfg.DebugChecks && evicted.InPrC {
			panic("core: relocation-set victim was privately cached")
		}
	}

	// Install the relocated block. The insertion protects it (MRU/RRPV 0)
	// without predictor training: a relocation is not a program access.
	dst.blocks[rs*l.cfg.Ways+dstWay] = Block{
		Valid:      true,
		Dirty:      vb.Dirty,
		Relocated:  true,
		Addr:       vb.Addr,
		DirPtr:     ptr,
		EvictCore:  -1,
		RelocDepth: depth,
	}
	dst.tags[rs*l.cfg.Ways+dstWay] = tagNone // relocated blocks are invisible to lookups
	dst.validCnt[rs]++
	dst.pol.Promote(rs, dstWay)

	// Record the new location in the directory entry.
	e := l.dir.At(ptr)
	if e == nil || !e.Valid {
		panic(fmt.Sprintf("core: relocation directory pointer %+v is stale", ptr))
	}
	to := directory.Location{Bank: dst.id, Set: rs, Way: dstWay}
	e.Relocated = true
	e.Loc = to

	l.updateSet(dst, rs)
	dst.relocTargets[rs]++

	// Statistics: counts, per-level attribution, inter-relocation interval
	// CDF and the modeled relocation-FIFO occupancy (§III-D1, Fig. 18).
	l.Stats.Relocations++
	l.Stats.RelocationsByLevel[lev]++
	cross := dst.id != home.id
	if cross {
		l.Stats.CrossBankRelocations++
	}
	if reReloc {
		l.Stats.ReRelocations++
	}
	if home.everRelocated {
		delta := now - home.lastReloc
		l.Stats.IntervalHist[intervalBucket(delta)]++
		// The FIFO drains one relocation per ~3 cycles (the nextRS logic
		// latency); arrivals faster than that accumulate.
		home.fifoOcc -= float64(delta) / 3.0
		if home.fifoOcc < 0 {
			home.fifoOcc = 0
		}
	}
	home.everRelocated = true
	home.lastReloc = now
	home.fifoOcc++
	if occ := int(home.fifoOcc); occ > l.Stats.FIFOMaxOcc {
		l.Stats.FIFOMaxOcc = occ
	}

	// Finally, fill the new block into the freed home way.
	l.fillWay(home, homeSet, victimWay, addr, dirty, inPrC, m)

	if l.obs != nil {
		l.obs.Record(obs.EvRelocEnd, -1, int16(dst.id), vb.Addr, uint64(depth))
	}

	return FillOutcome{
		Loc:     directory.Location{Bank: home.id, Set: homeSet, Way: victimWay},
		Evicted: evicted,
		Relocation: Relocation{
			Valid:        true,
			Addr:         vb.Addr,
			From:         directory.Location{Bank: home.id, Set: homeSet, Way: victimWay},
			To:           to,
			Level:        lev.String(),
			CrossBank:    cross,
			ReRelocation: reReloc,
			Depth:        depth,
		},
	}
}

// fillRelocated implements the §III-D1 cross-bank alternative: the newly
// filled block itself is installed in the relocation set (dst, rs) in
// Relocated state, reached through its freshly allocated directory entry;
// the home set is left untouched. Only meaningful for privately cached
// fills (a directory entry must exist to locate the block).
//
//ziv:noalloc
func (l *LLC) fillRelocated(home, dst *bank, rs int, lev level, addr uint64, dirty bool, m policy.Meta, now uint64) FillOutcome {
	_, ptr, ok := l.dir.Find(addr)
	if !ok {
		panic(fmt.Sprintf("core: FillCrossBank for untracked block %#x", addr))
	}
	if l.obs != nil {
		l.obs.Record(obs.EvRelocBegin, -1, int16(home.id), addr, uint64(lev))
		l.obs.Record(obs.EvRelocSetSelect, -1, int16(dst.id), uint64(rs), uint64(lev))
	}
	var evicted Evicted
	var dstWay int
	if lev == levInvalid {
		dstWay = l.invalidWay(dst, rs)
	} else {
		dstWay = l.relocVictimWay(dst, rs)
		evicted = l.evictWay(dst, rs, dstWay)
	}
	dst.blocks[rs*l.cfg.Ways+dstWay] = Block{
		Valid:      true,
		Dirty:      dirty,
		Relocated:  true,
		Addr:       addr,
		DirPtr:     ptr,
		EvictCore:  -1,
		RelocDepth: 1,
	}
	dst.tags[rs*l.cfg.Ways+dstWay] = tagNone
	dst.validCnt[rs]++
	dst.pol.Promote(rs, dstWay)
	to := directory.Location{Bank: dst.id, Set: rs, Way: dstWay}
	e := l.dir.At(ptr)
	e.Relocated = true
	e.Loc = to
	l.updateSet(dst, rs)
	dst.relocTargets[rs]++
	l.Stats.Relocations++
	l.Stats.RelocationsByLevel[lev]++
	l.Stats.CrossBankRelocations++
	if l.obs != nil {
		l.obs.Record(obs.EvRelocEnd, -1, int16(dst.id), addr, 1)
	}
	return FillOutcome{
		Loc:     to,
		Evicted: evicted,
		Relocation: Relocation{
			Valid:     true,
			Addr:      addr,
			From:      directory.Location{Bank: home.id},
			To:        to,
			Level:     lev.String(),
			CrossBank: true,
			Depth:     1,
		},
	}
}

// intervalBucket maps a cycle delta to its log2 histogram bucket.
func intervalBucket(delta uint64) int {
	b := bits.Len64(delta)
	if b >= len(Stats{}.IntervalHist) {
		b = len(Stats{}.IntervalHist) - 1
	}
	return b
}
