package nodocfix // want `package nodocfix has no package doc comment`

// Exported is documented; only the missing package doc is flagged.
func Exported() {}
