package detflow

import (
	"testing"

	"zivsim/internal/analysis/analysistest"
)

func TestDetflow(t *testing.T) {
	// dfa must precede dfb: dfb consumes dfa's exported summaries, the
	// same bottom-up order RunSuite guarantees for real packages.
	analysistest.Run(t, "testdata", Analyzer,
		"zivsim/internal/dfa",
		"zivsim/internal/dfb",
		"zivsim/internal/dfc",
		"zivsim/internal/obs",
		"zivsim/internal/telemetry",
	)
}
