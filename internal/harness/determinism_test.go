package harness

import (
	"reflect"
	"testing"

	"zivsim/internal/hierarchy"
)

// smallOptions is a fast configuration for scheduling/caching tests.
func smallOptions() Options {
	o := DefaultOptions()
	o.Scale = 32
	o.HeteroMixes = 1
	o.HomoMixes = 1
	o.Warmup = 1_000
	o.Measure = 4_000
	o.TPCECores = 8
	return o
}

// TestParallelismDoesNotAffectResults runs the same experiment serially and
// with maximum parallelism and requires identical tables: simulations are
// independent, so worker count and completion order must never leak into
// results.
func TestParallelismDoesNotAffectResults(t *testing.T) {
	e, ok := ByID("fig8")
	if !ok {
		t.Fatal("fig8 not registered")
	}

	serial := smallOptions()
	serial.Parallelism = 1
	ResetMemo()
	tabSerial := e.Run(serial)

	parallel := smallOptions()
	parallel.Parallelism = 8
	ResetMemo()
	tabParallel := e.Run(parallel)

	if !reflect.DeepEqual(tabSerial, tabParallel) {
		t.Errorf("tables differ between Parallelism=1 and Parallelism=8:\nserial:\n%s\nparallel:\n%s",
			tabSerial.Format(), tabParallel.Format())
	}
}

// TestDiskCacheHitMatchesColdRun populates the disk cache with a cold run,
// clears the in-process memo, and requires the cache-served rerun to render
// byte-identical output.
func TestDiskCacheHitMatchesColdRun(t *testing.T) {
	e, ok := ByID("fig1")
	if !ok {
		t.Fatal("fig1 not registered")
	}
	o := smallOptions()
	o.CacheDir = t.TempDir()

	ResetMemo()
	refsBefore := SimulatedRefs()
	cold := e.Run(o).Format()
	if SimulatedRefs() == refsBefore {
		t.Fatal("cold run simulated nothing")
	}

	ResetMemo()
	refsBefore = SimulatedRefs()
	warm := e.Run(o).Format()
	if warm != cold {
		t.Errorf("cache-served run differs from cold run:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if simulated := SimulatedRefs() - refsBefore; simulated != 0 {
		t.Errorf("warm run simulated %d refs; expected every job to come from the disk cache", simulated)
	}
}

// TestDiskCacheKeyDistinguishesOptions ensures result-affecting option
// changes miss the cache while result-neutral ones (Parallelism) hit it.
func TestDiskCacheKeyDistinguishesOptions(t *testing.T) {
	o := smallOptions()
	o.CacheDir = t.TempDir()
	r := newRunner(o)
	j := jobForTest(o)

	base := r.diskKey(j, 256<<10)

	seeded := o
	seeded.Seed++
	if k := (&runner{opt: seeded}).diskKey(j, 256<<10); k == base {
		t.Error("changing Seed did not change the cache key")
	}
	longer := o
	longer.Measure *= 2
	if k := (&runner{opt: longer}).diskKey(j, 256<<10); k == base {
		t.Error("changing Measure did not change the cache key")
	}
	par := o
	par.Parallelism = 7
	if k := (&runner{opt: par}).diskKey(j, 256<<10); k != base {
		t.Error("Parallelism changed the cache key; it cannot affect results")
	}
	elsewhere := o
	elsewhere.CacheDir = "/somewhere/else"
	if k := (&runner{opt: elsewhere}).diskKey(j, 256<<10); k != base {
		t.Error("CacheDir changed the cache key; it cannot affect results")
	}
	if k := r.diskKey(job{cfgLabel: j.cfgLabel + "x", cfg: j.cfg, mix: j.mix}, 256<<10); k == base {
		t.Error("changing the config label did not change the cache key")
	}
}

// jobForTest builds a representative job from an options value.
func jobForTest(o Options) job {
	mixes := o.mixes()
	return job{cfgLabel: "test-cfg", cfg: hierarchy.DefaultConfig(o.Cores, 256<<10, o.Scale), mix: mixes[0]}
}
