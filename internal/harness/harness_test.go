package harness

import (
	"strings"
	"testing"
)

// tinyOptions keeps harness tests fast: a 1/64-scale machine, two mixes,
// short segments.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Scale = 64
	o.HeteroMixes = 1
	o.HomoMixes = 1
	o.Warmup = 2000
	o.Measure = 8000
	o.TPCECores = 8
	return o
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{"ext1", "ext2", "ext3", "fig1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig2", "fig3", "fig4", "fig8", "fig9"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("experiment count = %d, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ByID("fig8"); !ok {
		t.Error("ByID(fig8) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestFig1Shape(t *testing.T) {
	e, _ := ByID("fig1")
	tab := e.Run(tinyOptions())
	if len(tab.Rows) != 4 {
		t.Fatalf("fig1 rows = %d, want 4", len(tab.Rows))
	}
	if len(tab.Columns) != 3 {
		t.Fatalf("fig1 columns = %d, want 3", len(tab.Columns))
	}
	// The baseline row at 256KB must be ~1.0 by construction.
	for _, r := range tab.Rows {
		if r.Label == "I-LRU" {
			if r.Values[0] < 0.99 || r.Values[0] > 1.01 {
				t.Errorf("I-LRU@256KB speedup = %v, want 1.0", r.Values[0])
			}
		}
		for _, v := range r.Values {
			if v <= 0 {
				t.Errorf("row %s has non-positive speedup %v", r.Label, v)
			}
		}
	}
}

func TestFig2ZIVFreeInclusionVictims(t *testing.T) {
	// Not fig2 itself, but the core claim: ZIV rows in fig8's matrix must
	// have zero inclusion victims. Run the ZIV spec directly.
	o := tinyOptions()
	s := spec{label: "ziv", l2: kb256, mode: 0, pol: 0, scheme: 4 /* SchemeZIV */, prop: 1 /* NotInPrC */}
	r, mixes, _ := sweepMatrix(o, []spec{s})
	for _, mix := range mixes {
		res := r.get("ziv", mix.Name)
		if res.TotalIncl != 0 {
			t.Fatalf("ZIV produced %d inclusion victims on %s", res.TotalIncl, mix.Name)
		}
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := &Table{
		Title:   "test",
		Columns: []string{"a", "b"},
		Rows:    []Row{{Label: "row1", Values: []float64{1.5, 2.5}}},
		Notes:   []string{"a note"},
	}
	txt := tab.Format()
	if !strings.Contains(txt, "test") || !strings.Contains(txt, "row1") || !strings.Contains(txt, "1.5") || !strings.Contains(txt, "a note") {
		t.Errorf("Format output missing content:\n%s", txt)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "label,a,b\n") || !strings.Contains(csv, "row1,1.5,2.5") {
		t.Errorf("CSV output wrong:\n%s", csv)
	}
}

func TestOptionsMixes(t *testing.T) {
	o := tinyOptions()
	mixes := o.mixes()
	if len(mixes) != o.HomoMixes+o.HeteroMixes {
		t.Fatalf("mixes = %d, want %d", len(mixes), o.HomoMixes+o.HeteroMixes)
	}
	o.HomoMixes = 100 // more than available: clamps to all 36
	if got := len(o.mixes()); got != 36+o.HeteroMixes {
		t.Fatalf("clamped mixes = %d, want %d", got, 36+o.HeteroMixes)
	}
}

func TestPaperOptions(t *testing.T) {
	o := PaperOptions()
	if o.Scale != 1 || o.HeteroMixes != 36 || o.HomoMixes != 36 || o.TPCECores != 128 {
		t.Errorf("PaperOptions = %+v", o)
	}
}

func TestExt1OracleRuns(t *testing.T) {
	e, ok := ByID("ext1")
	if !ok {
		t.Fatal("ext1 not registered")
	}
	tab := e.Run(tinyOptions())
	if len(tab.Rows) != 4 {
		t.Fatalf("ext1 rows = %d, want 4", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for _, v := range r.Values {
			if v <= 0 {
				t.Errorf("row %s has non-positive speedup %v", r.Label, v)
			}
		}
	}
}

func TestExt3SRRIPZeroVictims(t *testing.T) {
	e, ok := ByID("ext3")
	if !ok {
		t.Fatal("ext3 not registered")
	}
	tab := e.Run(tinyOptions())
	if len(tab.Rows) != 4 {
		t.Fatalf("ext3 rows = %d, want 4", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for _, v := range r.Values {
			if v <= 0 {
				t.Errorf("row %s has non-positive speedup %v", r.Label, v)
			}
		}
	}
}

func TestExt2AblationSkew(t *testing.T) {
	e, ok := ByID("ext2")
	if !ok {
		t.Fatal("ext2 not registered")
	}
	tab := e.Run(tinyOptions())
	if len(tab.Rows) != 2 {
		t.Fatalf("ext2 rows = %d, want 2", len(tab.Rows))
	}
	var rr, lowest float64
	for _, r := range tab.Rows {
		switch r.Label {
		case "ZIV-RoundRobin":
			rr = r.Values[1]
		case "ZIV-LowestIndex":
			lowest = r.Values[1]
		}
	}
	if rr == 0 || lowest == 0 {
		t.Skip("no relocations at this scale")
	}
	if lowest < rr {
		t.Errorf("lowest-index skew (%v) below round-robin (%v): fairness ablation inverted", lowest, rr)
	}
}

func TestFig14Shape(t *testing.T) {
	e, _ := ByID("fig14")
	tab := e.Run(tinyOptions())
	if len(tab.Rows) != 13 {
		t.Fatalf("fig14 rows = %d, want 13", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 1 || r.Values[0] <= 0 {
			t.Errorf("row %s: bad values %v", r.Label, r.Values)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	e, _ := ByID("fig15")
	tab := e.Run(tinyOptions())
	if len(tab.Rows) != 6 { // 3 families x {MESI, ZeroDEV}
		t.Fatalf("fig15 rows = %d, want 6", len(tab.Rows))
	}
	if len(tab.Columns) != 4 {
		t.Fatalf("fig15 columns = %d, want 4 directory sizes", len(tab.Columns))
	}
	for _, r := range tab.Rows {
		for _, v := range r.Values {
			if v <= 0 {
				t.Errorf("row %s has non-positive speedup", r.Label)
			}
		}
	}
}

func TestFig16And17Shape(t *testing.T) {
	for _, id := range []string{"fig16", "fig17"} {
		e, _ := ByID(id)
		tab := e.Run(tinyOptions())
		if len(tab.Rows) != 5 {
			t.Fatalf("%s rows = %d, want 5 MT workloads", id, len(tab.Rows))
		}
		if len(tab.Columns) != 6 {
			t.Fatalf("%s columns = %d, want 6 designs", id, len(tab.Columns))
		}
		for _, r := range tab.Rows {
			for i, v := range r.Values {
				if v <= 0 {
					t.Errorf("%s %s/%s: non-positive ratio %v", id, r.Label, tab.Columns[i], v)
				}
			}
		}
	}
}

func TestFig18CDF(t *testing.T) {
	e, _ := ByID("fig18")
	tab := e.Run(tinyOptions())
	if len(tab.Columns) != 3 {
		t.Fatalf("fig18 columns = %d, want 3 designs", len(tab.Columns))
	}
	// Each column must be a monotone CDF ending at ~1 (if any relocations).
	for c := 0; c < 3; c++ {
		prev := 0.0
		for _, r := range tab.Rows {
			v := r.Values[c]
			if v < prev-1e-9 {
				t.Fatalf("fig18 column %d not monotone at %s", c, r.Label)
			}
			prev = v
		}
		if len(tab.Rows) > 0 {
			last := tab.Rows[len(tab.Rows)-1].Values[c]
			if last != 0 && (last < 0.999 || last > 1.001) {
				t.Errorf("fig18 column %d CDF ends at %v", c, last)
			}
		}
	}
}

func TestFig19EPIGrowsWithL2(t *testing.T) {
	e, _ := ByID("fig19")
	tab := e.Run(tinyOptions())
	if len(tab.Rows) != 4 {
		t.Fatalf("fig19 rows = %d, want 4 designs", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for _, v := range r.Values {
			if v < 0 {
				t.Errorf("negative EPI in row %s", r.Label)
			}
		}
	}
}

func TestFig9PerMix(t *testing.T) {
	e, _ := ByID("fig9")
	o := tinyOptions()
	tab := e.Run(o)
	// One row per mix plus the geomean row.
	if len(tab.Rows) != o.HomoMixes+o.HeteroMixes+1 {
		t.Fatalf("fig9 rows = %d, want %d", len(tab.Rows), o.HomoMixes+o.HeteroMixes+1)
	}
	if tab.Rows[len(tab.Rows)-1].Label != "geomean" {
		t.Error("fig9 missing geomean row")
	}
}

func TestRunnerCacheSharing(t *testing.T) {
	o := tinyOptions()
	o.Seed++ // private option set for this test
	r1 := newRunner(o)
	r2 := newRunner(o)
	if r1 != r2 {
		t.Fatal("same options did not share a runner")
	}
	o2 := o
	o2.Measure++
	if newRunner(o2) == r1 {
		t.Fatal("different options shared a runner")
	}
}
