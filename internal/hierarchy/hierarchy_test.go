package hierarchy

import (
	"testing"

	"zivsim/internal/core"
	"zivsim/internal/trace"
)

// testConfig returns a small but fully structured machine: 4 cores, 512 B
// L1, 4 KB L2, 64 KB LLC over 8 banks.
func testConfig() Config {
	cfg := DefaultConfig(4, 256<<10, 64)
	cfg.DebugChecks = true
	cfg.CheckEvery = 512
	return cfg
}

// thrashGens builds per-core generators sized to stress the test machine:
// every core keeps a private hot set plus a circular pattern bigger than its
// LLC share.
func thrashGens(cfg Config, seed uint64) []trace.Generator {
	share := uint64(cfg.LLCBytes / cfg.Cores)
	gens := make([]trace.Generator, cfg.Cores)
	for i := range gens {
		base := (uint64(i) + 1) << 40
		hot := trace.NewHot(base, uint64(cfg.L2Bytes)/2, share, 0.9, 0.3, 2, seed+uint64(i))
		circ := trace.NewCircular(base+1<<36, share*10/8/64, 1, 0.2, 2, seed+uint64(i)+100)
		gens[i] = trace.NewBlend(seed+uint64(i)+200, []trace.Generator{hot, circ}, []float64{1, 1})
	}
	return gens
}

func runMachine(t *testing.T, cfg Config, seed uint64, warm, meas int) *Machine {
	t.Helper()
	m := New(cfg, thrashGens(cfg, seed), warm, meas)
	m.Run()
	if err := m.CheckInclusion(); err != nil {
		t.Fatalf("%s: inclusion check: %v", cfg.Name(), err)
	}
	if err := m.LLC().CheckInvariants(); err != nil {
		t.Fatalf("%s: LLC invariants: %v", cfg.Name(), err)
	}
	return m
}

func TestInclusiveBaselineRuns(t *testing.T) {
	cfg := testConfig()
	m := runMachine(t, cfg, 1, 1000, 8000)
	for i, cs := range m.CoreStats() {
		if cs.Instructions == 0 || cs.Cycles == 0 || cs.Refs == 0 {
			t.Errorf("core %d has empty stats: %+v", i, cs)
		}
		if cs.IPC() <= 0 {
			t.Errorf("core %d IPC = %v", i, cs.IPC())
		}
	}
	if m.LLC().Stats.Fills == 0 {
		t.Error("LLC never filled")
	}
	if m.Memory().Stats.Accesses() == 0 {
		t.Error("memory never accessed")
	}
}

func TestInclusiveBaselineGeneratesInclusionVictims(t *testing.T) {
	cfg := testConfig()
	m := runMachine(t, cfg, 2, 1000, 10000)
	if m.InclusionVictimTotal() == 0 {
		t.Fatal("thrash workload produced no inclusion victims under the inclusive baseline")
	}
}

func TestNonInclusiveNeverBackInvalidates(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = NonInclusive
	m := runMachine(t, cfg, 2, 1000, 10000)
	if m.InclusionVictimTotal() != 0 {
		t.Fatalf("non-inclusive LLC produced %d inclusion victims", m.InclusionVictimTotal())
	}
}

func TestZIVZeroInclusionVictims(t *testing.T) {
	for _, tc := range []struct {
		prop   core.Property
		policy PolicyKind
	}{
		{core.PropNotInPrC, PolicyLRU},
		{core.PropLRUNotInPrC, PolicyLRU},
		{core.PropLikelyDead, PolicyLRU},
		{core.PropMaxRRPVNotInPrC, PolicyHawkeye},
		{core.PropMaxRRPVLikelyDead, PolicyHawkeye},
	} {
		t.Run(tc.prop.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Scheme = core.SchemeZIV
			cfg.Property = tc.prop
			cfg.Policy = tc.policy
			m := runMachine(t, cfg, 2, 1000, 10000)
			if got := m.InclusionVictimTotal(); got != 0 {
				t.Fatalf("ZIV produced %d inclusion victims", got)
			}
			if m.LLC().Stats.InPrCEvictions != 0 || m.LLC().Stats.ForcedInclusions != 0 {
				t.Fatalf("ZIV LLC stats show InPrC evictions: %+v", m.LLC().Stats)
			}
			if m.LLC().Stats.Relocations == 0 && m.LLC().Stats.AlternateVictims == 0 {
				t.Error("ZIV never needed relocation under a thrash workload (suspicious)")
			}
		})
	}
}

func TestQBSAndSHARPReduceInclusionVictims(t *testing.T) {
	base := runMachine(t, testConfig(), 3, 1000, 10000)
	for _, scheme := range []core.Scheme{core.SchemeQBS, core.SchemeSHARP} {
		cfg := testConfig()
		cfg.Scheme = scheme
		m := runMachine(t, cfg, 3, 1000, 10000)
		if m.InclusionVictimTotal() >= base.InclusionVictimTotal() {
			t.Errorf("%v inclusion victims (%d) not below baseline (%d)",
				scheme, m.InclusionVictimTotal(), base.InclusionVictimTotal())
		}
	}
}

func TestHawkeyeBaselineRuns(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = PolicyHawkeye
	m := runMachine(t, cfg, 4, 1000, 8000)
	if m.LLC().Stats.Hits == 0 {
		t.Error("Hawkeye LLC never hit")
	}
}

func TestMINPolicyRuns(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = PolicyMIN
	m := runMachine(t, cfg, 5, 500, 4000)
	if m.LLC().Stats.Hits == 0 {
		t.Error("MIN LLC never hit")
	}
}

func TestMINGeneratesMoreInclusionVictimsThanLRU(t *testing.T) {
	// The paper's Fig. 2 driver: MIN victimizes recently used blocks in
	// circular patterns, which are exactly the privately cached ones.
	mk := func(p PolicyKind) uint64 {
		cfg := testConfig()
		cfg.Policy = p
		m := runMachine(t, cfg, 6, 1000, 12000)
		return m.InclusionVictimTotal()
	}
	lru, min := mk(PolicyLRU), mk(PolicyMIN)
	if min <= lru {
		t.Logf("warning: MIN victims (%d) not above LRU (%d) on this workload", min, lru)
	}
	if min == 0 {
		t.Error("MIN produced no inclusion victims under circular thrash")
	}
}

func TestCHARonBaseRuns(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = core.SchemeCHARonBase
	m := runMachine(t, cfg, 7, 1000, 8000)
	if m.InclusionVictimTotal() == 0 {
		t.Log("CHARonBase eliminated all inclusion victims on this workload (possible)")
	}
}

func TestZeroDEVEliminatesDirectoryVictims(t *testing.T) {
	cfg := testConfig()
	cfg.DirFactor = 0.25 // heavily under-provisioned: forces dir conflicts
	m := runMachine(t, cfg, 8, 1000, 8000)
	if m.DirInclusionVictimTotal() == 0 {
		t.Skip("under-provisioned directory produced no victims; workload too small")
	}
	cfg2 := testConfig()
	cfg2.DirFactor = 0.25
	cfg2.ZeroDEV = true
	m2 := runMachine(t, cfg2, 8, 1000, 8000)
	if got := m2.DirInclusionVictimTotal(); got != 0 {
		t.Fatalf("ZeroDEV mode produced %d directory inclusion victims", got)
	}
	if m2.Directory().Stats.Spills == 0 {
		t.Error("ZeroDEV never spilled despite directory pressure")
	}
}

func TestSharedWorkloadCoherence(t *testing.T) {
	cfg := testConfig()
	gens := trace.NewSharedGroup(1<<40, trace.SharedConfig{
		Threads:      cfg.Cores,
		SharedBytes:  uint64(cfg.LLCBytes) / 2,
		PrivateBytes: uint64(cfg.L2Bytes) / 2,
		SharedFrac:   0.7,
		Pattern:      trace.SharedHot,
		HotFrac:      0.8,
		WriteFrac:    0.3,
		GapMean:      2,
		Seed:         11,
	})
	m := New(cfg, gens, 500, 6000)
	m.Run()
	if err := m.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
	if m.CoherenceInvals == 0 {
		t.Error("read-write sharing produced no coherence invalidations")
	}
}

func TestNonInclusiveFourthCase(t *testing.T) {
	// Force LLC evictions of privately held shared blocks: small LLC, big
	// private residency, then re-access from another core.
	cfg := testConfig()
	cfg.Mode = NonInclusive
	gens := trace.NewSharedGroup(1<<40, trace.SharedConfig{
		Threads:      cfg.Cores,
		SharedBytes:  uint64(cfg.LLCBytes) * 2,
		PrivateBytes: uint64(cfg.L2Bytes) / 2,
		SharedFrac:   0.8,
		Pattern:      trace.SharedHot,
		HotFrac:      0.9,
		WriteFrac:    0.1,
		GapMean:      2,
		Seed:         13,
	})
	m := New(cfg, gens, 500, 10000)
	m.Run()
	if err := m.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
	// The fourth case shows up as cache-to-cache transfers; the counter is
	// implicit in directory hits with LLC misses. We assert indirectly: the
	// run completed with invariants intact and some LLC misses were served
	// without memory accesses.
	var llcMisses, memAccesses uint64
	for _, cs := range m.CoreStats() {
		llcMisses += cs.LLCMisses
		memAccesses += cs.MemAccesses
	}
	if llcMisses == 0 {
		t.Skip("no LLC misses; workload too small to exercise the fourth case")
	}
	if memAccesses >= llcMisses {
		t.Log("no cache-to-cache transfers observed (acceptable for some schedules)")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Scheme = core.SchemeZIV; c.Property = core.PropNotInPrC; c.Mode = NonInclusive },
		func(c *Config) { c.Policy = PolicyMIN; c.Scheme = core.SchemeQBS },
		func(c *Config) { c.LLCBytes = c.Cores * (c.L1Bytes + c.L2Bytes) }, // aggregate private >= LLC
	}
	for i, mut := range cases {
		cfg := testConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			cfg.Validate()
		}()
	}
}

func TestConfigName(t *testing.T) {
	cfg := testConfig()
	if cfg.Name() != "I-LRU" {
		t.Errorf("Name = %q", cfg.Name())
	}
	cfg.Mode = NonInclusive
	cfg.Policy = PolicyHawkeye
	if cfg.Name() != "NI-Hawkeye" {
		t.Errorf("Name = %q", cfg.Name())
	}
	cfg.Mode = Inclusive
	cfg.Scheme = core.SchemeZIV
	cfg.Property = core.PropMaxRRPVLikelyDead
	if cfg.Name() != "I-Hawkeye-ZIV(MRLikelyDead)" {
		t.Errorf("Name = %q", cfg.Name())
	}
	cfg.Scheme = core.SchemeQBS
	if cfg.Name() != "I-Hawkeye-QBS" {
		t.Errorf("Name = %q", cfg.Name())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		cfg := testConfig()
		cfg.DebugChecks = false
		m := New(cfg, thrashGens(cfg, 21), 500, 5000)
		m.Run()
		out := []uint64{m.LLC().Stats.Hits, m.LLC().Stats.Misses, m.InclusionVictimTotal()}
		for _, cs := range m.CoreStats() {
			out = append(out, cs.Cycles, cs.Instructions)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at field %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWarmupResetsGlobalStats(t *testing.T) {
	cfg := testConfig()
	cfg.DebugChecks = false
	m := New(cfg, thrashGens(cfg, 31), 2000, 2000)
	m.Run()
	// After warmup reset, fills counted should be well below total traffic
	// including warmup (the reset happened).
	var refs uint64
	for _, cs := range m.CoreStats() {
		refs += cs.Refs
	}
	if refs != uint64(cfg.Cores)*2000 {
		t.Errorf("measured refs = %d, want %d", refs, cfg.Cores*2000)
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = core.SchemeZIV
	cfg.Property = core.PropNotInPrC
	m := runMachine(t, cfg, 9, 500, 6000)
	var insts uint64
	for _, cs := range m.CoreStats() {
		insts += cs.Instructions
	}
	if m.Meter().EPI(insts) <= 0 {
		t.Error("EPI not positive")
	}
	if m.LLC().Stats.Relocations > 0 && m.Meter().Count(8 /* energy.Relocation */) == 0 {
		t.Error("relocations happened but no relocation energy recorded")
	}
}

func TestZIVOracleProperty(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = core.SchemeZIV
	cfg.Property = core.PropOracleNotInPrC
	m := runMachine(t, cfg, 12, 1000, 8000)
	if got := m.InclusionVictimTotal(); got != 0 {
		t.Fatalf("oracle-assisted ZIV produced %d inclusion victims", got)
	}
	if m.LLC().Stats.Relocations == 0 && m.LLC().Stats.AlternateVictims == 0 {
		t.Error("oracle-assisted ZIV never relocated under thrash")
	}
}

func TestZIVSelectLowestAblation(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = core.SchemeZIV
	cfg.Property = core.PropNotInPrC
	cfg.SelectLowest = true
	m := runMachine(t, cfg, 13, 1000, 8000)
	if got := m.InclusionVictimTotal(); got != 0 {
		t.Fatalf("SelectLowest ZIV produced %d inclusion victims", got)
	}
	if m.LLC().Stats.Relocations > 10 {
		if skew := m.LLC().RelocTargetSkew(); skew < 1.0 {
			t.Errorf("RelocTargetSkew = %v, must be >= 1", skew)
		}
	}
}

// Regression: a ZeroDEV spill of a directory entry that tracks a relocated
// block must retarget the block's tag-encoded pointer (found via fig15's
// ZIV+ZeroDEV matrix).
func TestZIVWithZeroDEVSpills(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = core.SchemeZIV
	cfg.Property = core.PropNotInPrC
	cfg.ZeroDEV = true
	cfg.DirFactor = 0.25 // force spills
	m := runMachine(t, cfg, 17, 1000, 12000)
	if m.InclusionVictimTotal() != 0 || m.DirInclusionVictimTotal() != 0 {
		t.Fatalf("ZIV+ZeroDEV produced victims: %d back-inval, %d directory",
			m.InclusionVictimTotal(), m.DirInclusionVictimTotal())
	}
	if m.Directory().Stats.Spills == 0 {
		t.Skip("no spills triggered; directory not pressured enough")
	}
}

func TestZIVOnSRRIP(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = PolicySRRIP
	cfg.Scheme = core.SchemeZIV
	cfg.Property = core.PropMaxRRPVNotInPrC
	m := runMachine(t, cfg, 19, 1000, 8000)
	if got := m.InclusionVictimTotal(); got != 0 {
		t.Fatalf("ZIV on SRRIP produced %d inclusion victims", got)
	}
	if m.LLC().Stats.Hits == 0 {
		t.Error("SRRIP LLC never hit")
	}
}

func TestConfigTableIMappings(t *testing.T) {
	// Table I: L2 lookup latency grows with capacity; 768KB is 12-way.
	if l2LatencyFor(256<<10) != 4 || l2LatencyFor(512<<10) != 5 || l2LatencyFor(768<<10) != 6 || l2LatencyFor(1<<20) != 7 {
		t.Error("l2LatencyFor drifted from Table I")
	}
	if relocDeltaFor(256<<10) != 1 || relocDeltaFor(512<<10) != 2 || relocDeltaFor(768<<10) != 3 {
		t.Error("relocDeltaFor drifted from §III-C1")
	}
	if waysFor(768<<10) != 12 || waysFor(512<<10) != 8 {
		t.Error("waysFor drifted from Table I")
	}
	if dirWaysFor(768<<10) != 12 || dirWaysFor(256<<10) != 8 {
		t.Error("dirWaysFor drifted from §III-C3")
	}
}

func TestDefaultConfigGeometry(t *testing.T) {
	cfg := DefaultConfig(8, 512<<10, 1)
	if cfg.LLCBytes != 8<<20 || cfg.L2Bytes != 512<<10 || cfg.L1Bytes != 32<<10 {
		t.Errorf("full-scale geometry wrong: %+v", cfg)
	}
	if cfg.LLCBanks != 8 || cfg.LLCWays != 16 {
		t.Error("LLC organization drifted from Table I")
	}
	// 128-core TPC-E-style machine: LLC defaults to 1 MB per core.
	cfg128 := DefaultConfig(128, 128<<10, 1)
	if cfg128.LLCBytes != 128<<20 {
		t.Errorf("128-core LLC = %d", cfg128.LLCBytes)
	}
	// Scaling divides capacities but not ways/latencies.
	s8 := DefaultConfig(8, 512<<10, 8)
	if s8.LLCBytes != 1<<20 || s8.L2Bytes != 64<<10 || s8.L2Ways != 8 || s8.L2Latency != 5 {
		t.Errorf("scaled geometry wrong: %+v", s8)
	}
}

func TestSRRIPPolicyKindString(t *testing.T) {
	if PolicySRRIP.String() != "SRRIP" {
		t.Error("PolicySRRIP name wrong")
	}
	if PolicyKind(99).String() != "?" {
		t.Error("unknown policy kind should stringify to ?")
	}
}
