// Package cf exercises ctxflow: guarded and unguarded channel ops in
// ctx-taking functions, the ctx.Done self-wait exemption, WaitGroup
// and time.Sleep primitives, blocker summaries (direct, transitive,
// annotated), ctx-taking callees, and //ziv:blocking parse errors.
package cf

import (
	"context"
	"sync"
	"time"
)

func work(int) {}

// RecvGuarded selects on ctx.Done beside the receive: clean.
func RecvGuarded(ctx context.Context, in chan int) {
	select {
	case v := <-in:
		work(v)
	case <-ctx.Done():
	}
}

// RecvBad receives with no guard.
func RecvBad(ctx context.Context, in chan int) {
	v := <-in // want `blocking receive from in ignores ctx cancellation`
	work(v)
}

// SendBad sends with no guard.
func SendBad(ctx context.Context, out chan int) {
	out <- 1 // want `blocking send on out ignores ctx cancellation`
}

// SendDefault never blocks thanks to the default arm: clean.
func SendDefault(ctx context.Context, out chan int) {
	select {
	case out <- 1:
	default:
	}
}

// SelectNoGuard's arms all block; without a ctx.Done case or default
// the select itself can hang forever.
func SelectNoGuard(ctx context.Context, a, b chan int) {
	select {
	case v := <-a: // want `blocking receive from a ignores ctx cancellation`
		work(v)
	case b <- 1: // want `blocking send on b ignores ctx cancellation`
	}
}

// AwaitCancel waits for the cancellation itself: clean.
func AwaitCancel(ctx context.Context) {
	<-ctx.Done()
}

// RangeBad drains a channel with no guard.
func RangeBad(ctx context.Context, in chan int) {
	for v := range in { // want `blocking range over in ignores ctx cancellation`
		work(v)
	}
}

// SleepBad sleeps through cancellation.
func SleepBad(ctx context.Context) {
	time.Sleep(time.Second) // want `time.Sleep ignores ctx cancellation`
}

// WaitBad joins a WaitGroup with no guard.
func WaitBad(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want `WaitGroup.Wait ignores ctx cancellation`
}

// drain blocks on its channel; it takes no ctx, so it becomes a
// blocker summary instead of a report.
func drain(in chan int) {
	for v := range in {
		work(v)
	}
}

// relay reaches the blocker through one hop and becomes one itself.
func relay(in chan int) {
	drain(in)
}

// CallBlockerBad calls a direct blocker without a guard.
func CallBlockerBad(ctx context.Context, in chan int) {
	drain(in) // want `call to blocking function drain ignores ctx cancellation`
}

// CallRelayBad hits the transitive blocker summary.
func CallRelayBad(ctx context.Context, in chan int) {
	relay(in) // want `call to blocking function relay ignores ctx cancellation`
}

// Annotated blocks by documented contract: its body is excused.
//
//ziv:blocking drains the channel to exhaustion on shutdown
func Annotated(ctx context.Context, in chan int) {
	for v := range in {
		work(v)
	}
}

// pump takes ctx itself: calls to it are never flagged — the callee
// owns its cancellation story and is checked at its own definition.
func pump(ctx context.Context, in chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			work(v)
		}
	}
}

// CallCtxTaker delegates cancellation to the ctx-taking callee: clean.
func CallCtxTaker(ctx context.Context, in chan int) {
	pump(ctx, in)
}

// badspec carries a malformed directive, so its body is still checked.
//
//ziv:blocking(reason) // want `malformed //ziv:blocking directive`
func badspec(ctx context.Context, in chan int) {
	<-in // want `blocking receive from in ignores ctx cancellation`
}

func init() {
	// Keep the unexported fixture referenced.
	_ = badspec
}
