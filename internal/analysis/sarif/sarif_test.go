package sarif

import (
	"bytes"
	"go/token"
	"strings"
	"testing"

	"zivsim/internal/analysis/framework"
)

func sampleDiags() []framework.Diagnostic {
	return []framework.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/core/llc.go", Line: 42, Column: 3},
			Message:  "map iteration order is nondeterministic",
			Analyzer: "nodeterminism",
		},
		{
			Pos:      token.Position{Filename: "internal/core/ziv.go", Line: 7, Column: 1},
			Message:  "sidecar tags not updated",
			Analyzer: "sidecarsync",
		},
	}
}

func sampleRules() []RuleInfo {
	return []RuleInfo{
		{Name: "sidecarsync", Doc: "check sidecar coherence\nlong text"},
		{Name: "nodeterminism", Doc: "forbid nondeterminism sources"},
	}
}

func TestMarshalValidates(t *testing.T) {
	data, err := Marshal(New("", sampleRules(), sampleDiags()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("generated SARIF fails validation: %v", err)
	}
	for _, want := range []string{
		`"version": "2.1.0"`,
		`"ruleId": "nodeterminism"`,
		`"uri": "internal/core/llc.go"`,
		`"startLine": 42`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("output missing %s", want)
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a, err := Marshal(New("", sampleRules(), sampleDiags()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(New("", sampleRules(), sampleDiags()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two marshals of identical input differ")
	}
}

func TestRuleCatalogSortedAndFirstLine(t *testing.T) {
	l := New("", sampleRules(), nil)
	rules := l.Runs[0].Tool.Driver.Rules
	if len(rules) != 2 || rules[0].ID != "nodeterminism" || rules[1].ID != "sidecarsync" {
		t.Fatalf("rules = %+v, want sorted by name", rules)
	}
	if rules[1].ShortDescription.Text != "check sidecar coherence" {
		t.Errorf("doc not truncated to first line: %q", rules[1].ShortDescription.Text)
	}
}

func TestEmptyResultsIsValid(t *testing.T) {
	data, err := Marshal(New("", sampleRules(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("clean run invalid: %v", err)
	}
	if !strings.Contains(string(data), `"results": []`) {
		t.Error("clean run must still emit an empty results array")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"wrong version":   `{"$schema":"x","version":"2.0.0","runs":[]}`,
		"missing runs":    `{"$schema":"x","version":"2.1.0"}`,
		"empty runs":      `{"$schema":"x","version":"2.1.0","runs":[]}`,
		"missing driver":  `{"$schema":"x","version":"2.1.0","runs":[{"tool":{},"results":[]}]}`,
		"missing ruleId":  `{"$schema":"x","version":"2.1.0","runs":[{"tool":{"driver":{"name":"z"}},"results":[{"message":{"text":"m"}}]}]}`,
		"missing message": `{"$schema":"x","version":"2.1.0","runs":[{"tool":{"driver":{"name":"z"}},"results":[{"ruleId":"r"}]}]}`,
	}
	for name, raw := range cases {
		if err := Validate([]byte(raw)); err == nil {
			t.Errorf("%s: Validate accepted malformed input", name)
		}
	}
}
