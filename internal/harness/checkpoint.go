// Sweep checkpointing. A checkpoint file (conventionally .zivcheckpoint)
// is an append-only journal of completed jobs: one header line naming the
// simulator revision and the hash of the normalized Options, then one
// JSON line per finished (config, mix) Result, appended as jobs complete.
// Because entries are keyed by the same content hash as the disk cache
// (diskKey: cacheVersion + normalized Options + config + mix + baseL2), a
// resumed run adopts exactly the jobs whose full deterministic identity
// matches, and a checkpoint taken under different options is ignored
// wholesale via the header.
//
// The journal tolerates the crashes it exists for: appends are one
// write() of one line, and a torn final line (process killed mid-append)
// is detected and dropped on load — every earlier entry remains usable.
// Unlike the disk cache, which persists indefinitely, a checkpoint
// describes one sweep: it is truncated at the start of every run that is
// not resuming.
package harness

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// checkpointHeader is the first line of the journal. A mismatch in either
// field invalidates every entry that follows.
type checkpointHeader struct {
	Version string `json:"version"`
	Options string `json:"options"`
}

// checkpointEntry is one completed job.
type checkpointEntry struct {
	Key      string `json:"key"`
	CfgLabel string `json:"cfg"`
	Mix      string `json:"mix"`
	Result   Result `json:"result"`
}

// checkpoint is an open journal: the loaded entries of a resumed sweep
// plus the append handle for the current one.
type checkpoint struct {
	mu sync.Mutex
	//ziv:guards(mu)
	f *os.File
	//ziv:guards(mu)
	entries map[string]Result
	// broken records a failed write; appending stops (journaling is
	// best-effort).
	//ziv:guards(mu)
	broken bool
}

// checkpointOptionsHash fingerprints the result-affecting option set, the
// same normalization the disk-cache key uses.
func (o Options) checkpointOptionsHash() string {
	data, err := json.Marshal(struct {
		Version string
		Options Options
	}{cacheVersion, o.normalized()})
	if err != nil {
		panic(fmt.Sprintf("harness: checkpoint hash marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// IdentityHash fingerprints the result-affecting option set (the
// checkpoint header hash). cmd/zivsim stamps it into the telemetry run
// ledger's header so a ledger can be matched to the checkpoint and
// cache entries of the sweep that produced it.
func (o Options) IdentityHash() string { return o.checkpointOptionsHash() }

// openCheckpoint opens (resume) or creates (fresh) the journal at path.
// On resume, entries from a matching header are loaded and the file is
// extended in place; a missing, corrupt or mismatched journal silently
// degrades to a fresh one — the checkpoint is an accelerator, never a
// correctness dependency.
func openCheckpoint(path string, resume bool, optionsHash string) (*checkpoint, error) {
	c := &checkpoint{entries: map[string]Result{}}
	if resume {
		c.load(path, optionsHash)
	}
	flags := os.O_WRONLY | os.O_CREATE
	if len(c.entries) > 0 {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	c.f = f
	if len(c.entries) == 0 {
		hdr, err := json.Marshal(checkpointHeader{Version: cacheVersion, Options: optionsHash})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// load reads a prior journal, keeping its entries only when the header
// matches this sweep's identity. Unparsable lines — a torn tail from an
// interrupted append, or stray corruption — are dropped individually.
func (c *checkpoint) load(path string, optionsHash string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	if !sc.Scan() {
		return
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil ||
		hdr.Version != cacheVersion || hdr.Options != optionsHash {
		return
	}
	for sc.Scan() {
		var e checkpointEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" {
			continue
		}
		c.entries[e.Key] = e.Result
	}
}

// lookup returns the checkpointed Result for a job key, if present.
func (c *checkpoint) lookup(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.entries[key]
	return res, ok
}

// record appends one completed job. The whole entry is a single write of
// a single line, so a crash can tear at most the final line — which load
// drops. Failures disable further journaling but never fail the sweep.
func (c *checkpoint) record(key, cfgLabel, mix string, res Result) {
	data, err := json.Marshal(checkpointEntry{Key: key, CfgLabel: cfgLabel, Mix: mix, Result: res})
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return
	}
	c.entries[key] = res
	if _, err := c.f.Write(append(data, '\n')); err != nil {
		c.broken = true
		fmt.Fprintf(os.Stderr, "harness: checkpoint write failed, journaling disabled: %v\n", err)
	}
}

// close releases the journal's file handle.
func (c *checkpoint) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}
