// Package glh is the provider side of goleak's cross-package
// fixtures: its exported workers' join signals travel to importers as
// summary facts.
package glh

import (
	"context"
	"sync"
)

// Worker defers Done on its WaitGroup parameter; the summary records
// parameter 0 as a Done signal.
func Worker(wg *sync.WaitGroup, n int) {
	defer wg.Done()
	_ = n
}

// Notify closes its channel parameter on every path.
func Notify(done chan struct{}) {
	close(done)
}

// Pump observes ctx.Done in an exiting select case; the summary marks
// it ctx-guarded.
func Pump(ctx context.Context, in <-chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v, ok := <-in:
			if !ok {
				return
			}
			_ = v
		}
	}
}
