# Targets mirror .github/workflows/ci.yml so local runs match the gates.

GO ?= go

.PHONY: all build vet lint lint-sarif lint-baseline test race fuzz bench bench-quick bench-compare obs-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Diff-gated: findings recorded in zivlint.baseline.json do not fail the
# run; only fresh findings do.
lint:
	$(GO) run ./cmd/zivlint ./...

# Same gate, but also leaves a SARIF report for upload/inspection.
lint-sarif:
	$(GO) run ./cmd/zivlint -format=sarif -o zivlint.sarif ./...

# Accept the current findings as the new baseline (commit the result).
lint-baseline:
	$(GO) run ./cmd/zivlint -write-baseline ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

fuzz:
	$(GO) test -fuzz=FuzzScheme -fuzztime=20s ./internal/core

# Full figure benchmark: cold, serial, fixed workload. Writes BENCH_figs.json
# with refs/sec and the speedup over the recorded seed baselines.
bench:
	$(GO) run ./cmd/zivbench -o BENCH_figs.json

# Fast smoke variant for CI: truncated reference counts, no speedup record.
bench-quick:
	$(GO) run ./cmd/zivbench -quick -o BENCH_quick.json

# Diff a fresh full bench against the committed report; exits nonzero on a
# >5% refs/s regression on any figure.
bench-compare:
	$(GO) run ./cmd/zivbench -o BENCH_new.json
	$(GO) run ./cmd/zivbench -compare BENCH_figs.json BENCH_new.json

# Tiny instrumented run + trace validation, mirroring CI's obs-smoke job.
obs-smoke:
	$(GO) run ./cmd/zivsim -fig fig1 -scale 32 -cores 2 -mixes 1 -homo 0 \
		-warmup 1000 -refs 4000 -obs-interval 2000 -obs-events 4096 \
		-obs-out obsout > /dev/null
	$(GO) run ./cmd/zivreport -checktrace obsout

ci: build vet lint test race
