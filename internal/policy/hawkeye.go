package policy

// Hawkeye implements the Hawkeye replacement policy (Jain & Lin, ISCA 2016):
// an OPTgen structure reconstructs Belady-MIN decisions for a sample of sets
// and trains a PC-indexed predictor that classifies fills as cache-friendly
// or cache-averse; insertion and victim selection then follow RRIP with the
// predictor's classification.
//
// The implementation follows the paper's hardware budget in spirit: 3-bit
// RRPVs, a 3-bit-counter predictor table, set sampling, and an occupancy
// vector covering 8x-associativity time quanta per sampled set.
type Hawkeye struct {
	rankBuf
	sets, ways int

	rrpv     []int
	friendly []bool
	pcOf     []uint64
	validPC  []bool

	pred predictor

	sampleMask  int // sets with (set & sampleMask) == sampleMatch are sampled
	sampleMatch int
	samplers    map[int]*optgenSet
}

const (
	hawkeyeMaxRRPV   = 7
	hawkeyePredBits  = 13 // 8192-entry predictor
	hawkeyePredSize  = 1 << hawkeyePredBits
	hawkeyeCtrMax    = 7 // 3-bit saturating counters
	hawkeyeCtrInit   = 4 // weakly friendly
	hawkeyeVectorLen = 8 // occupancy vector covers 8x associativity quanta
)

type predictor struct {
	ctr [hawkeyePredSize]uint8
}

func pcIndex(pc uint64) int {
	h := (pc >> 2) * 0x9e3779b97f4a7c15
	return int(h >> (64 - hawkeyePredBits))
}

func (p *predictor) friendly(pc uint64) bool { return p.ctr[pcIndex(pc)] >= hawkeyeCtrInit }

func (p *predictor) train(pc uint64, positive bool) {
	i := pcIndex(pc)
	if positive {
		if p.ctr[i] < hawkeyeCtrMax {
			p.ctr[i]++
		}
	} else if p.ctr[i] > 0 {
		p.ctr[i]--
	}
}

// optgenSet reconstructs MIN behaviour for one sampled set using the
// occupancy-vector formulation from the Hawkeye paper.
type optgenSet struct {
	capacity int
	length   int      // vector length in quanta
	occ      []uint16 // ring buffer of occupancy per quantum
	now      uint64   // current quantum (monotonic per-set access count)
	hist     map[uint64]optgenEntry
	// order is a fixed-size ring FIFO of tracked addresses for history
	// capacity management; a growable slice would reallocate on the
	// fill path.
	order   []uint64
	ordHead int // index of the oldest tracked address
	ordLen  int
}

type optgenEntry struct {
	last uint64
	pc   uint64
}

func newOptgenSet(ways int) *optgenSet {
	l := hawkeyeVectorLen * ways
	return &optgenSet{
		capacity: ways,
		length:   l,
		occ:      make([]uint16, l),
		hist:     make(map[uint64]optgenEntry, 2*l),
		order:    make([]uint64, 2*l+1),
	}
}

// access processes one access to the sampled set and returns the PC to
// train plus whether OPT would have hit, with trainable=false for cold
// (first-touch or aged-out) accesses.
func (o *optgenSet) access(addr, pc uint64) (trainPC uint64, optHit, trainable bool) {
	e, seen := o.hist[addr]
	if seen && o.now-e.last < uint64(o.length) {
		// Liveness interval [e.last, o.now): OPT hits iff every quantum in
		// the interval has spare capacity.
		hit := true
		for t := e.last; t < o.now; t++ {
			if o.occ[t%uint64(o.length)] >= uint16(o.capacity) {
				hit = false
				break
			}
		}
		if hit {
			for t := e.last; t < o.now; t++ {
				o.occ[t%uint64(o.length)]++
			}
		}
		trainPC, optHit, trainable = e.pc, hit, true
	}
	// Open a new usage interval at the current quantum.
	o.occ[o.now%uint64(o.length)] = 0 // reuse slot for the new quantum
	o.hist[addr] = optgenEntry{last: o.now, pc: pc}
	if !seen {
		o.order[(o.ordHead+o.ordLen)%len(o.order)] = addr
		o.ordLen++
		if o.ordLen > 2*o.length {
			drop := o.order[o.ordHead]
			o.ordHead = (o.ordHead + 1) % len(o.order)
			o.ordLen--
			if drop != addr {
				delete(o.hist, drop)
			}
		}
	}
	o.now++
	return trainPC, optHit, trainable
}

// NewHawkeye returns a Hawkeye policy sampling roughly one in sampleStride
// sets (power of two; 8 mirrors the paper's ~6% sampling at LLC scale).
func NewHawkeye(sampleStride int) *Hawkeye {
	if sampleStride < 1 {
		sampleStride = 8
	}
	return &Hawkeye{sampleMask: sampleStride - 1, sampleMatch: 0}
}

// Name implements Policy.
func (p *Hawkeye) Name() string { return "Hawkeye" }

// Init implements Policy.
func (p *Hawkeye) Init(sets, ways int) {
	p.sets, p.ways = sets, ways
	n := sets * ways
	p.rrpv = make([]int, n)
	p.friendly = make([]bool, n)
	p.pcOf = make([]uint64, n)
	p.validPC = make([]bool, n)
	for i := range p.rrpv {
		p.rrpv[i] = hawkeyeMaxRRPV
	}
	for i := range p.pred.ctr {
		p.pred.ctr[i] = hawkeyeCtrInit
	}
	// Samplers are built eagerly: the sampled sets are fixed by the
	// stride mask, and creating one lazily would allocate mid-fill.
	p.samplers = make(map[int]*optgenSet)
	for set := 0; set < sets; set++ {
		if set&p.sampleMask == p.sampleMatch {
			p.samplers[set] = newOptgenSet(ways)
		}
	}
	p.grow(ways)
}

func (p *Hawkeye) sampler(set int) *optgenSet {
	if set&p.sampleMask != p.sampleMatch {
		return nil
	}
	return p.samplers[set]
}

func (p *Hawkeye) train(set int, m Meta) {
	if s := p.sampler(set); s != nil {
		if pc, optHit, ok := s.access(m.Addr, m.PC); ok {
			p.pred.train(pc, optHit)
		}
	}
}

// OnHit implements Policy.
func (p *Hawkeye) OnHit(set, way int, m Meta) {
	p.train(set, m)
	i := set*p.ways + way
	fr := p.pred.friendly(m.PC)
	p.friendly[i] = fr
	p.pcOf[i] = m.PC
	p.validPC[i] = true
	if fr {
		p.rrpv[i] = 0
	} else {
		p.rrpv[i] = hawkeyeMaxRRPV
	}
}

// OnFill implements Policy.
func (p *Hawkeye) OnFill(set, way int, m Meta) {
	p.train(set, m)
	i := set*p.ways + way
	fr := p.pred.friendly(m.PC)
	p.friendly[i] = fr
	p.pcOf[i] = m.PC
	p.validPC[i] = true
	if fr {
		// Age the other cache-friendly lines, then insert at 0.
		base := set * p.ways
		for w := 0; w < p.ways; w++ {
			j := base + w
			if w != way && p.friendly[j] && p.rrpv[j] < hawkeyeMaxRRPV-1 {
				p.rrpv[j]++
			}
		}
		p.rrpv[i] = 0
	} else {
		p.rrpv[i] = hawkeyeMaxRRPV
	}
}

// OnEvict implements Policy: evicting a cache-friendly line means the
// predictor was wrong about its PC — detrain it.
func (p *Hawkeye) OnEvict(set, way int) {
	i := set*p.ways + way
	if p.friendly[i] && p.validPC[i] {
		p.pred.train(p.pcOf[i], false)
	}
	p.clear(i)
}

// OnInvalidate implements Policy. Forced removals are not replacement
// mistakes, so no detraining happens.
func (p *Hawkeye) OnInvalidate(set, way int) { p.clear(set*p.ways + way) }

func (p *Hawkeye) clear(i int) {
	p.rrpv[i] = hawkeyeMaxRRPV
	p.friendly[i] = false
	p.validPC[i] = false
	p.pcOf[i] = 0
}

// Rank implements Policy: cache-averse lines (RRPV==7) first, then friendly
// lines by descending RRPV (oldest friendly first), ties by way index.
func (p *Hawkeye) Rank(set int) []int {
	out := p.take(p.ways)
	base := set * p.ways
	for w := 0; w < p.ways; w++ {
		out[w] = w
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && p.rrpv[base+out[j]] > p.rrpv[base+out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RRPV implements RRPVer.
func (p *Hawkeye) RRPV(set, way int) int { return p.rrpv[set*p.ways+way] }

// MaxRRPV implements RRPVer.
func (p *Hawkeye) MaxRRPV() int { return hawkeyeMaxRRPV }

var (
	_ Policy = (*Hawkeye)(nil)
	_ RRPVer = (*Hawkeye)(nil)
)

// Promote implements Policy: protect the line (RRPV 0) without touching the
// OPTgen sampler or predictor — QBS promotions are not program accesses.
func (p *Hawkeye) Promote(set, way int) { p.rrpv[set*p.ways+way] = 0 }
