package telemetry

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock returns an injected clock that advances stepMS milliseconds
// on every reading, starting from a fixed epoch. Atomic so concurrent
// sink/recorder paths stay race-free under -race.
func fakeClock(stepMS int64) func() time.Time {
	var ticks atomic.Int64
	return func() time.Time {
		n := ticks.Add(1)
		return time.Unix(1_000_000, 0).Add(time.Duration(n*stepMS) * time.Millisecond)
	}
}

// traceDoc is the subset of Chrome trace JSON the span tests inspect.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   uint64         `json:"ts"`
		Dur  uint64         `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestSpanRecorderTimeline drives a two-job lifecycle under the fake
// clock and checks the exported Chrome trace: per-track threads,
// complete spans with durations, instants, and open-span closure.
func TestSpanRecorderTimeline(t *testing.T) {
	r := NewSpanRecorder(fakeClock(1))
	r.Begin("jobA", "queued")
	r.Begin("jobB", "queued")
	r.Begin("jobA", "running") // implicitly ends queued
	r.Instant("jobA", "checkpoint", nil)
	r.End("jobA", map[string]any{"outcome": "done"})
	// jobB's queued phase stays open: snapshot must close it as "open".

	var buf strings.Builder
	if err := r.WriteSweepTrace(&buf, "test sweep"); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatal(err)
	}

	var spans, instants, meta int
	sawOpen := false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Pid != 2 {
				t.Fatalf("span %q on pid %d, want sweep pid 2", ev.Name, ev.Pid)
			}
			if ev.Name == "running" && ev.Dur == 0 {
				t.Fatalf("running span has zero duration")
			}
			if oc, ok := ev.Args["outcome"]; ok && oc == "open" {
				sawOpen = true
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// jobA: queued + running; jobB: queued (closed as open) = 3 spans.
	if spans != 3 {
		t.Fatalf("%d spans, want 3", spans)
	}
	if instants != 1 {
		t.Fatalf("%d instants, want 1", instants)
	}
	if !sawOpen {
		t.Fatal("still-open phase not exported with outcome=open")
	}
	// process_name + one thread_name per track.
	if meta != 3 {
		t.Fatalf("%d metadata events, want 3", meta)
	}
}

// TestSpanRecorderDeterministic pins byte-identical output for the same
// event sequence under the same injected clock.
func TestSpanRecorderDeterministic(t *testing.T) {
	render := func() string {
		r := NewSpanRecorder(fakeClock(7))
		r.Begin("j", "queued")
		r.Begin("j", "running")
		r.Instant("j", "fault", map[string]any{"err": "boom"})
		r.End("j", map[string]any{"outcome": "failed"})
		var buf strings.Builder
		if err := r.WriteSweepTrace(&buf, "d"); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("same sequence rendered differently:\n%s\nvs\n%s", a, b)
	}
}

// TestSinkLifecycle drives the sink through a queued → retry → done
// lifecycle plus an adoption and a skip, then checks every surface:
// metrics, ledger, spans.
func TestSinkLifecycle(t *testing.T) {
	reg := NewRegistry()
	spans := NewSpanRecorder(fakeClock(1))
	path := t.TempDir() + "/run.ndjson"
	led, err := CreateLedger(path, "opt")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSink(fakeClock(1), reg, spans, led)

	s.JobQueued("j1")
	s.AttemptStart("j1", 1)
	s.AttemptEnd("j1", "key1", "cfg", "mix", 1, OutcomeRetry, 0, "boom")
	s.AttemptStart("j1", 2)
	s.CheckpointRecorded("j1")
	s.AttemptEnd("j1", "key1", "cfg", "mix", 2, OutcomeDone, 5000, "")
	s.JobQueued("j2")
	s.JobAdopted("j2", "key2", "cfg", "mix2", OutcomeCacheHit)
	s.JobQueued("j3")
	s.JobSkipped("j3", "key3", "cfg", "mix3")
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := WriteExposition(&buf, reg); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	for _, want := range []string{
		"zivsim_sweep_jobs_queued_total 3",
		`zivsim_sweep_jobs_total{outcome="done"} 1`,
		`zivsim_sweep_jobs_total{outcome="cache-hit"} 1`,
		`zivsim_sweep_jobs_total{outcome="skipped"} 1`,
		"zivsim_sweep_attempts_total 2",
		"zivsim_sweep_retries_total 1",
		"zivsim_sweep_checkpoint_writes_total 1",
		"zivsim_sweep_refs_simulated_total 5000",
		"zivsim_sweep_jobs_inflight 0",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}

	_, recs, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	var outcomes []string
	for _, rec := range recs {
		outcomes = append(outcomes, rec.Outcome)
	}
	want := []string{OutcomeRetry, OutcomeDone, OutcomeCacheHit, OutcomeSkipped}
	if strings.Join(outcomes, ",") != strings.Join(want, ",") {
		t.Fatalf("ledger outcomes = %v, want %v", outcomes, want)
	}
	if recs[1].WallUS <= 0 || recs[1].RefsPerSec <= 0 {
		t.Fatalf("done record missing wall/rate: %+v", recs[1])
	}

	// A nil sink must be inert on every call.
	var nilSink *Sink
	nilSink.JobQueued("x")
	nilSink.AttemptStart("x", 1)
	nilSink.AttemptEnd("x", "k", "c", "m", 1, OutcomeDone, 1, "")
	nilSink.JobAdopted("x", "k", "c", "m", OutcomeCacheHit)
	nilSink.JobSkipped("x", "k", "c", "m")
	nilSink.CheckpointRecorded("x")
	if nilSink.Spans() != nil {
		t.Fatal("nil sink returned a span recorder")
	}
}
