// Command zivlint is the project's static-analysis suite: a multichecker
// over the four zivsim-specific analyzers that keep the simulator
// deterministic and its runtime invariant checks sound.
//
//	zivlint ./...          # analyze the whole module (CI default)
//	zivlint help           # list analyzers
//
// Exit status is 0 when clean, 1 when any analyzer reports a finding,
// and 2 on load errors. Individual findings can be waived in source with
// //zivlint:ignore <analyzer> <reason>.
package main

import (
	"zivsim/internal/analysis/blockmutation"
	"zivsim/internal/analysis/framework"
	"zivsim/internal/analysis/nodeterminism"
	"zivsim/internal/analysis/statreset"
	"zivsim/internal/analysis/uncheckedinvariant"
)

func main() {
	framework.Main(
		blockmutation.Analyzer,
		nodeterminism.Analyzer,
		statreset.Analyzer,
		uncheckedinvariant.Analyzer,
	)
}
