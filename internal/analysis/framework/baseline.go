package framework

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is the committed set of accepted findings used for
// diff-gating: a finding present in the baseline does not fail the
// build, so only *new* findings gate CI. Entries match on (analyzer,
// repo-relative file, message) with a count — deliberately not on line
// numbers, which shift with every unrelated edit.
type Baseline struct {
	// Version guards the file format.
	Version int `json:"version"`
	// Findings is sorted by (analyzer, file, message).
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"` // reporting analyzer name
	File     string `json:"file"`     // repo-relative file of the finding
	Message  string `json:"message"`  // exact diagnostic message
	Count    int    `json:"count"`    // accepted occurrences of this class
}

// baselineVersion is the current file-format version.
const baselineVersion = 1

type baselineKey struct {
	analyzer, file, message string
}

// RelFile normalizes a diagnostic filename to a slash-separated path
// relative to root (repo-relative paths keep the baseline and SARIF
// output machine-independent).
func RelFile(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	abs, err := filepath.Abs(file)
	if err != nil {
		return filepath.ToSlash(file)
	}
	rootAbs, err := filepath.Abs(root)
	if err != nil {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(rootAbs, abs)
	if err != nil {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// NewBaseline builds a baseline from a diagnostic set, with file paths
// made relative to root.
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[baselineKey{d.Analyzer, RelFile(root, d.Pos.Filename), d.Message}]++
	}
	b := &Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Message < c.Message
	})
	return b
}

// LoadBaseline reads a baseline file. A missing file yields an empty
// baseline (gating against nothing) with no error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: baselineVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: version %d, want %d (regenerate with -write-baseline)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// Write saves the baseline to path with a trailing newline, suitable for
// committing.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diags into the findings covered by the baseline and the
// new (unbaselined) ones. Counting is per (analyzer, file, message): a
// baseline entry with Count 2 absorbs at most two matching findings.
func (b *Baseline) Filter(root string, diags []Diagnostic) (baselined, fresh []Diagnostic) {
	budget := map[baselineKey]int{}
	for _, e := range b.Findings {
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, RelFile(root, d.Pos.Filename), d.Message}
		if budget[k] > 0 {
			budget[k]--
			baselined = append(baselined, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return baselined, fresh
}

// Stale returns the baseline entries (with their unconsumed counts)
// that no current finding matched: debt that has been paid off. Stale
// entries are harmless to gating but dangerous to leave committed — a
// regression reintroducing the finding would be silently absorbed — so
// callers surface them for pruning.
func (b *Baseline) Stale(root string, diags []Diagnostic) []BaselineEntry {
	remaining := map[baselineKey]int{}
	for _, e := range b.Findings {
		remaining[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, RelFile(root, d.Pos.Filename), d.Message}
		if remaining[k] > 0 {
			remaining[k]--
		}
	}
	var stale []BaselineEntry
	for _, e := range b.Findings {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if n := remaining[k]; n > 0 {
			stale = append(stale, BaselineEntry{Analyzer: e.Analyzer, File: e.File, Message: e.Message, Count: n})
			remaining[k] = 0
		}
	}
	return stale
}
