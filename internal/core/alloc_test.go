package core

import (
	"testing"

	"zivsim/internal/directory"
	"zivsim/internal/policy"
)

// TestZIVFillChurnNoAllocs guards the heap-free steady-state fill path: the
// common ZIV miss — eviction or alternate-victim selection — must not
// allocate. FillOutcome and its Evicted/Relocation records are plain values
// precisely so the per-miss hot path stays off the heap.
func TestZIVFillChurnNoAllocs(t *testing.T) {
	dir := directory.New(directory.Config{Slices: 8, SetsPerSlice: 256, Ways: 8})
	llc := New(Config{
		Banks: 8, SetsPerBank: 64, Ways: 16,
		Scheme: SchemeZIV, Property: PropNotInPrC,
		NewPolicy: func() policy.Policy { return policy.NewLRU() },
	}, dir)
	// Track every third block so a third of replacement candidates look
	// privately cached and exercise the alternate-victim search.
	for a := uint64(0); a < 4096; a += 3 {
		dir.Allocate(a, int(a%8), directory.Shared)
	}
	i := uint64(0)
	fill := func() {
		addr := i % (1 << 20)
		i++
		if e, _, ok := dir.Find(addr); ok && e.Relocated {
			return // already resident at its relocated location
		} else if _, hit := llc.Probe(addr); !hit {
			llc.Fill(addr, int(addr%8), false, ok, policy.Meta{Addr: addr}, i)
		}
	}
	for j := 0; j < 20_000; j++ { // reach the full-set steady state
		fill()
	}
	if llc.Stats.AlternateVictims == 0 {
		t.Fatal("setup exercised no alternate-victim selections; the guard would not cover the ZIV search")
	}
	if n := testing.AllocsPerRun(5000, fill); n != 0 {
		t.Errorf("ZIV fill path allocates %v per op; want 0", n)
	}
}

// TestZIVRelocationNoAllocs guards the relocation path itself. One LLC set is
// kept entirely privately cached, so every fill into it must displace a
// victim to another set (no alternate victim exists). A rotating pool of
// tracked addresses keeps the cycle repeatable: by the time an address is
// refilled it has been relocated out, and invalidating that copy — the same
// call the hierarchy makes when the last private copy dies — frees exactly
// the slot the next relocation consumes.
func TestZIVRelocationNoAllocs(t *testing.T) {
	dir := directory.New(directory.Config{Slices: 2, SetsPerSlice: 32, Ways: 8})
	llc := New(Config{
		Banks: 2, SetsPerBank: 8, Ways: 4,
		Scheme: SchemeZIV, Property: PropNotInPrC,
		NewPolicy: func() policy.Policy { return policy.NewLRU() },
	}, dir)

	// All addresses map to (bank 0, set 0): stride 16 covers the 1 bank bit
	// + 3 set bits. The first four fill the set; the pool rotates through it.
	const poolSize = 8
	now := uint64(0)
	track := func(a uint64) {
		if _, evicted, _ := dir.Allocate(a, 0, directory.Shared); evicted.Valid {
			t.Fatalf("unexpected directory eviction tracking %#x", a)
		}
	}
	for k := uint64(0); k < 4; k++ {
		a := k * 16
		track(a)
		now++
		llc.Fill(a, 0, false, true, policy.Meta{Addr: a}, now)
	}
	pool := make([]uint64, poolSize)
	for k := range pool {
		pool[k] = uint64(4+k) * 16
		track(pool[k])
	}

	i := 0
	fill := func() {
		addr := pool[i%poolSize]
		i++
		e, _, ok := dir.Find(addr)
		if !ok {
			t.Fatalf("pool address %#x lost its directory entry", addr)
		}
		if e.Relocated {
			// The block's previous incarnation was displaced; drop it the
			// way an eviction notice would before refilling.
			llc.InvalidateRelocated(e.Loc)
			e.Relocated = false
		}
		now++
		llc.Fill(addr, 0, false, true, policy.Meta{Addr: addr}, now)
	}
	for j := 0; j < 4*poolSize; j++ { // reach the every-fill-relocates steady state
		fill()
	}
	before := llc.Stats.Relocations
	n := testing.AllocsPerRun(5000, fill)
	if moved := llc.Stats.Relocations - before; moved < 5000 {
		t.Fatalf("only %d of 5001 measured fills relocated; the guard is not covering the relocation path", moved)
	}
	if n != 0 {
		t.Errorf("ZIV relocation path allocates %v per op; want 0", n)
	}
	if llc.Stats.ForcedInclusions != 0 {
		t.Errorf("relocation cycle forced %d inclusion victims; want 0", llc.Stats.ForcedInclusions)
	}
}
