// Benchmarks regenerating every table and figure of the paper's evaluation.
// One Benchmark per figure (Figs. 1-4 motivation, 8-19 results) runs the
// corresponding harness experiment at a reduced scale and reports its
// headline numbers as custom metrics; `go test -bench=Fig -benchmem` prints
// the full set. For the publication-shaped tables themselves, run
// `go run ./cmd/zivsim -fig all` (or -paper for full fidelity).
//
// Micro-benchmarks of the hot structures (PV nextRS, LLC fill paths, the
// policies) follow the figure benches.
package zivsim

import (
	"fmt"
	"testing"

	"zivsim/internal/core"
	"zivsim/internal/directory"
	"zivsim/internal/harness"
	"zivsim/internal/hierarchy"
	"zivsim/internal/policy"
	"zivsim/internal/trace"
)

// benchOptions keeps figure benches to a few seconds each.
func benchOptions() harness.Options {
	o := harness.DefaultOptions()
	o.Scale = 32
	o.HeteroMixes = 2
	o.HomoMixes = 2
	o.Warmup = 5_000
	o.Measure = 20_000
	o.TPCECores = 16
	return o
}

// benchFigure runs one harness experiment per iteration and reports the
// first row's values as metrics. The process-wide result memo is cleared
// before every iteration: without that, iteration 2 onward replays cached
// results and the bench reports the memo's speed, not the simulator's.
// Simulated references per wall-clock second is the headline metric.
func benchFigure(b *testing.B, id string) {
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	o := benchOptions()
	refsBefore := harness.SimulatedRefs()
	var tab *harness.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.ResetMemo()
		tab = e.Run(o)
	}
	b.StopTimer()
	refs := harness.SimulatedRefs() - refsBefore
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/s")
	if tab == nil || len(tab.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	perMix := id == "fig9" || id == "fig12"
	for _, row := range tab.Rows {
		for j, v := range row.Values {
			if j < len(tab.Columns) {
				b.ReportMetric(v, fmt.Sprintf("%s/%s", row.Label, tab.Columns[j]))
			}
		}
		if perMix {
			break // one sample row; the geomean appears in the figure output
		}
	}
}

func BenchmarkFig1(b *testing.B)  { benchFigure(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { benchFigure(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchFigure(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchFigure(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchFigure(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchFigure(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchFigure(b, "fig18") }
func BenchmarkFig19(b *testing.B) { benchFigure(b, "fig19") }

// BenchmarkSimulatorThroughput measures raw simulated references per second
// on a ZIV machine — the end-to-end hot path.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := hierarchy.DefaultConfig(8, 256<<10, 32)
	cfg.Scheme = core.SchemeZIV
	cfg.Property = core.PropLikelyDead
	refs := 20_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gens := make([]trace.Generator, 8)
		for c := range gens {
			share := uint64(cfg.LLCBytes / 8)
			gens[c] = trace.Translate(trace.NewCircular((uint64(c)+1)<<40, share*10/8/64, 1, 0.2, 1, uint64(c+1)), 5)
		}
		m := hierarchy.New(cfg, gens, 0, refs)
		m.Run()
	}
	b.ReportMetric(float64(8*refs*b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkPVNextRS measures the Algorithm-1 round-robin selection.
func BenchmarkPVNextRS(b *testing.B) {
	pv := core.NewPV(1024)
	for s := 0; s < 1024; s += 7 {
		pv.Set(s, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pv.NextRS() < 0 {
			b.Fatal("empty PV")
		}
	}
}

// BenchmarkLLCFillZIV measures the ZIV fill path including relocations.
func BenchmarkLLCFillZIV(b *testing.B) {
	dir := directory.New(directory.Config{Slices: 8, SetsPerSlice: 256, Ways: 8})
	llc := core.New(core.Config{
		Banks: 8, SetsPerBank: 64, Ways: 16,
		Scheme: core.SchemeZIV, Property: core.PropNotInPrC,
		NewPolicy: func() policy.Policy { return policy.NewLRU() },
	}, dir)
	// Pre-populate the directory so some victims look privately cached.
	for a := uint64(0); a < 4096; a++ {
		if a%3 == 0 {
			dir.Allocate(a, int(a%8), directory.Shared)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) % (1 << 20)
		if e, _, ok := dir.Find(addr); ok && e.Relocated {
			continue // resident at its relocated location
		} else if _, hit := llc.Probe(addr); !hit {
			llc.Fill(addr, int(addr%8), false, ok, policy.Meta{Addr: addr}, uint64(i))
		}
	}
}

// BenchmarkHawkeye measures the Hawkeye policy's per-access cost (OPTgen
// sampling included).
func BenchmarkHawkeye(b *testing.B) {
	p := policy.NewHawkeye(1)
	p.Init(64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := i & 63
		way := i & 15
		p.OnHit(set, way, policy.Meta{PC: uint64(i&255) * 4, Addr: uint64(i % 4096)})
		if i&7 == 0 {
			p.Rank(set)
		}
	}
}

// BenchmarkLRURank measures victim ranking for the default policy.
func BenchmarkLRURank(b *testing.B) {
	p := policy.NewLRU()
	p.Init(64, 16)
	for s := 0; s < 64; s++ {
		for w := 0; w < 16; w++ {
			p.OnFill(s, w, policy.Meta{})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rank(i & 63)
	}
}

func BenchmarkExt1(b *testing.B) { benchFigure(b, "ext1") }
func BenchmarkExt2(b *testing.B) { benchFigure(b, "ext2") }
func BenchmarkExt3(b *testing.B) { benchFigure(b, "ext3") }
