package core

import (
	"fmt"

	"zivsim/internal/directory"
)

// CheckInvariants validates the LLC's internal consistency against the
// sparse directory. It is used by tests and, with Config.DebugChecks, by the
// hierarchy after every simulated event. The invariants are:
//
//  1. NotInPrC agreement: a valid non-relocated block has NotInPrC set iff
//     the directory does not track it (i.e. no private cache holds it).
//  2. Relocated linkage: every relocated block's directory pointer resolves
//     to a valid entry in Relocated state whose location points back at the
//     block; conversely every Relocated directory entry points at a valid
//     relocated LLC block for the same address.
//  3. LikelyDead implies NotInPrC.
//  4. Property-vector coherence: each configured PV bit equals the
//     recomputed set predicate.
//  5. No duplicate addresses among non-relocated blocks, and no relocated
//     block shadowing a non-relocated copy of the same address.
func (l *LLC) CheckInvariants() error {
	seen := make(map[uint64]bool, l.ValidCount())
	for i := range l.banks {
		bk := &l.banks[i]
		for s := 0; s < l.cfg.SetsPerBank; s++ {
			valid := 0
			for w := 0; w < l.cfg.Ways; w++ {
				b := &bk.blocks[s*l.cfg.Ways+w]
				wantTag := tagNone
				if b.Valid && !b.Relocated {
					wantTag = b.Addr
				}
				if got := bk.tags[s*l.cfg.Ways+w]; got != wantTag {
					return fmt.Errorf("bank %d set %d way %d: tag sidecar %#x != expected %#x", i, s, w, got, wantTag)
				}
				if !b.Valid {
					continue
				}
				valid++
				loc := directory.Location{Bank: i, Set: s, Way: w}
				if b.LikelyDead && !b.NotInPrC {
					return fmt.Errorf("block %#x at %+v: LikelyDead without NotInPrC", b.Addr, loc)
				}
				if seen[b.Addr] {
					return fmt.Errorf("block %#x duplicated in LLC", b.Addr)
				}
				seen[b.Addr] = true
				if b.Relocated {
					e := l.dir.At(b.DirPtr)
					if e == nil || !e.Valid {
						return fmt.Errorf("relocated block %#x at %+v: stale directory pointer %+v", b.Addr, loc, b.DirPtr)
					}
					if !e.Relocated {
						return fmt.Errorf("relocated block %#x at %+v: directory entry not in Relocated state", b.Addr, loc)
					}
					if e.Loc != loc {
						return fmt.Errorf("relocated block %#x: directory location %+v != actual %+v", b.Addr, e.Loc, loc)
					}
					if e.Addr != b.Addr {
						return fmt.Errorf("relocated block debug address %#x != directory address %#x", b.Addr, e.Addr)
					}
					if b.NotInPrC {
						return fmt.Errorf("relocated block %#x marked NotInPrC (must have private copies)", b.Addr)
					}
					continue
				}
				tracked := l.dir.Tracked(b.Addr)
				if b.NotInPrC == tracked {
					return fmt.Errorf("block %#x at %+v: NotInPrC=%v but directory tracked=%v", b.Addr, loc, b.NotInPrC, tracked)
				}
			}
			if int(bk.validCnt[s]) != valid {
				return fmt.Errorf("bank %d set %d: validCnt %d != actual valid ways %d", i, s, bk.validCnt[s], valid)
			}
			for _, lev := range l.levels {
				if got, want := bk.pvs[lev].Get(s), l.setSatisfies(bk, s, lev); got != want {
					return fmt.Errorf("bank %d set %d: %v PV bit %v, recomputed %v", i, s, lev, got, want)
				}
			}
		}
	}
	// Reverse direction of the relocated linkage.
	var err error
	l.dir.ForEach(func(e *directory.Entry, p directory.Ptr) {
		if err != nil || !e.Relocated {
			return
		}
		b := l.block(e.Loc)
		if !b.Valid || !b.Relocated || b.Addr != e.Addr {
			err = fmt.Errorf("directory entry %#x Relocated -> %+v, but LLC block there is %+v", e.Addr, e.Loc, *b)
			return
		}
		if b.DirPtr != p {
			err = fmt.Errorf("directory entry %#x at %+v: block back-pointer %+v mismatch", e.Addr, p, b.DirPtr)
		}
	})
	return err
}
