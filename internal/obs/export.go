package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Exporters serialize an Observer's recorded state. Everything written
// here is derived from simulated-cycle-indexed records, so the output is
// byte-identical across runs of the same configuration; detflow treats
// arguments flowing into the Write* functions of this package as
// determinism sinks to keep it that way.

// traceEvent is one Chrome trace_event entry. Field order is fixed by
// the struct, and args maps are marshaled with sorted keys, so the JSON
// is deterministic.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Trace process IDs: cores live under pid 0, LLC banks under pid 1, and
// wall-clock sweep timelines (WriteTimeline) under pid 2.
const (
	tracePidCores = 0
	tracePidBanks = 1
	tracePidSweep = 2
)

// WriteChromeTrace emits the observer's intervals and events as Chrome
// trace_event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. The timebase is simulated cycles with 1 µs ≡ 1
// cycle: counter tracks come from the interval samples, instant events
// from the ring buffer. label names the trace (figure/mix).
func WriteChromeTrace(w io.Writer, o *Observer, label string) error {
	evs := make([]traceEvent, 0, 64)

	evs = append(evs,
		traceEvent{Name: "process_name", Ph: "M", Pid: tracePidCores,
			Args: map[string]any{"name": "cores"}},
		traceEvent{Name: "process_name", Ph: "M", Pid: tracePidBanks,
			Args: map[string]any{"name": "llc-banks"}},
	)
	for c := 0; c < o.Cores(); c++ {
		evs = append(evs, traceEvent{Name: "thread_name", Ph: "M",
			Pid: tracePidCores, Tid: c,
			Args: map[string]any{"name": "core" + strconv.Itoa(c)}})
	}
	for b := 0; b < o.Banks(); b++ {
		evs = append(evs, traceEvent{Name: "thread_name", Ph: "M",
			Pid: tracePidBanks, Tid: b,
			Args: map[string]any{"name": "bank" + strconv.Itoa(b)}})
	}

	for i := range o.CoreSamples() {
		s := &o.CoreSamples()[i]
		core := "core" + strconv.Itoa(s.Core)
		evs = append(evs,
			traceEvent{Name: core + " ipc", Ph: "C", Ts: s.EndCycle,
				Pid: tracePidCores, Tid: s.Core,
				Args: map[string]any{"ipc": s.IPC()}},
			traceEvent{Name: core + " llc-miss", Ph: "C", Ts: s.EndCycle,
				Pid: tracePidCores, Tid: s.Core,
				Args: map[string]any{"misses": s.LLCMisses}},
			traceEvent{Name: core + " inclusion-victims", Ph: "C", Ts: s.EndCycle,
				Pid: tracePidCores, Tid: s.Core,
				Args: map[string]any{"victims": s.InclVictims + s.DirVictims}},
		)
	}
	for i := range o.BankSamples() {
		s := &o.BankSamples()[i]
		// Bank samples carry no end cycle of their own; pair them with the
		// machine sample of the same interval for the timestamp.
		ms := o.MachineSamples()
		if s.Interval >= len(ms) {
			continue
		}
		evs = append(evs, traceEvent{
			Name: "bank" + strconv.Itoa(s.Bank) + " relocations-landed",
			Ph:   "C", Ts: ms[s.Interval].EndCycle,
			Pid: tracePidBanks, Tid: s.Bank,
			Args: map[string]any{"relocations": s.Relocations}})
	}

	if o.Ring != nil {
		for _, ev := range o.Ring.Events(nil) {
			te := traceEvent{Name: ev.Kind.String(), Ph: "i", Ts: ev.Cycle, S: "t",
				Args: map[string]any{
					"addr": "0x" + strconv.FormatUint(ev.Addr, 16),
					"arg":  ev.Arg,
				}}
			switch {
			case ev.Core >= 0:
				te.Pid, te.Tid = tracePidCores, int(ev.Core)
			case ev.Bank >= 0:
				te.Pid, te.Tid = tracePidBanks, int(ev.Bank)
			default:
				te.Pid, te.Tid = tracePidCores, 0
			}
			evs = append(evs, te)
		}
	}

	f := traceFile{
		TraceEvents:     evs,
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"label":    label,
			"timebase": "1us = 1 simulated cycle",
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// TimelineSpan is one complete ("X") span on a named track of a generic
// timeline (see WriteTimeline). Timestamps are microseconds since the
// timeline's own epoch; for the harness's sweep timelines that epoch is
// wall-clock sweep start, not simulated cycles.
type TimelineSpan struct {
	// Track names the Perfetto thread row the span renders on (the
	// harness uses one track per job key).
	Track string
	// Name is the span label ("running", "retry", ...).
	Name string
	// StartUS is the span start in microseconds since the timeline epoch.
	StartUS uint64
	// DurUS is the span duration in microseconds.
	DurUS uint64
	// Args carries optional annotations shown in the Perfetto detail pane.
	Args map[string]any
}

// TimelineInstant is one instant ("i") event on a timeline track
// (checkpoint writes, fault injections, drain requests).
type TimelineInstant struct {
	// Track names the row the instant renders on.
	Track string
	// Name is the instant label.
	Name string
	// TsUS is the event time in microseconds since the timeline epoch.
	TsUS uint64
	// Args carries optional annotations.
	Args map[string]any
}

// WriteTimeline emits a generic span timeline as Chrome trace_event
// JSON under the dedicated sweep pid, loadable in Perfetto alongside
// (or independently of) the cycle-domain traces. Tracks become threads
// in first-appearance order, spans become complete ("X") events and
// instants become instant ("i") events. label names the timeline in the
// trace metadata.
func WriteTimeline(w io.Writer, label string, spans []TimelineSpan, instants []TimelineInstant) error {
	tids := map[string]int{}
	var order []string
	tidOf := func(track string) int {
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(order)
		tids[track] = id
		order = append(order, track)
		return id
	}
	for _, s := range spans {
		tidOf(s.Track)
	}
	for _, in := range instants {
		tidOf(in.Track)
	}

	evs := make([]traceEvent, 0, len(spans)+len(instants)+len(order)+1)
	evs = append(evs, traceEvent{Name: "process_name", Ph: "M", Pid: tracePidSweep,
		Args: map[string]any{"name": "sweep"}})
	for id, track := range order {
		evs = append(evs, traceEvent{Name: "thread_name", Ph: "M",
			Pid: tracePidSweep, Tid: id,
			Args: map[string]any{"name": track}})
	}
	for _, s := range spans {
		evs = append(evs, traceEvent{Name: s.Name, Ph: "X", Ts: s.StartUS, Dur: s.DurUS,
			Pid: tracePidSweep, Tid: tids[s.Track], Args: s.Args})
	}
	for _, in := range instants {
		evs = append(evs, traceEvent{Name: in.Name, Ph: "i", Ts: in.TsUS, S: "t",
			Pid: tracePidSweep, Tid: tids[in.Track], Args: in.Args})
	}

	f := traceFile{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"label":    label,
			"timebase": "1us = 1 wall-clock microsecond since sweep start",
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// ndjsonEvent is the NDJSON serialization of one ring event.
type ndjsonEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Core  int16  `json:"core"`
	Bank  int16  `json:"bank"`
	Addr  string `json:"addr"`
	Arg   uint64 `json:"arg"`
}

// WriteNDJSON dumps the ring buffer's live events one JSON object per
// line, oldest first.
func WriteNDJSON(w io.Writer, o *Observer) error {
	if o.Ring == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range o.Ring.Events(nil) {
		rec := ndjsonEvent{
			Cycle: ev.Cycle,
			Kind:  ev.Kind.String(),
			Core:  ev.Core,
			Bank:  ev.Bank,
			Addr:  "0x" + strconv.FormatUint(ev.Addr, 16),
			Arg:   ev.Arg,
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return nil
}

// IntervalCSVHeader is the single header shared by every row scope of
// the interval CSV. scope is core, machine, bank or depth; columns not
// meaningful for a scope are zero. Depth rows use interval -1: they are
// a whole-run histogram, not an interval series.
const IntervalCSVHeader = "scope,interval,id,start_cycle,end_cycle,refs,instructions,cycles,ipc," +
	"l1_miss,l2_miss,llc_miss,incl_victims,dir_incl_victims," +
	"relocations,cross_bank_relocations,alternate_victims,evictions,inprc_evictions," +
	"dir_evictions,dir_spills,dram_reads,dram_writes,dram_queue_depth"

// WriteIntervalCSV emits the interval samples and the relocation-depth
// histogram as a single flat CSV (see IntervalCSVHeader), the input of
// `zivreport -obs`.
func WriteIntervalCSV(w io.Writer, o *Observer) error {
	if _, err := io.WriteString(w, IntervalCSVHeader+"\n"); err != nil {
		return err
	}
	for i := range o.CoreSamples() {
		s := &o.CoreSamples()[i]
		_, err := fmt.Fprintf(w, "core,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%d,%d,0,0,0,0,0,0,0,0,0,0\n",
			s.Interval, s.Core, s.StartCycle, s.EndCycle,
			s.Refs, s.Instructions, s.Cycles,
			strconv.FormatFloat(s.IPC(), 'f', 4, 64),
			s.L1Misses, s.L2Misses, s.LLCMisses, s.InclVictims, s.DirVictims)
		if err != nil {
			return err
		}
	}
	for i := range o.MachineSamples() {
		s := &o.MachineSamples()[i]
		_, err := fmt.Fprintf(w, "machine,%d,0,%d,%d,0,0,0,0,0,0,0,0,0,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Interval, s.StartCycle, s.EndCycle,
			s.Relocations, s.CrossBankRelocs, s.AlternateVictims,
			s.Evictions, s.InPrCEvictions, s.DirEvictions, s.DirSpills,
			s.DRAMReads, s.DRAMWrites, s.QueueDepth)
		if err != nil {
			return err
		}
	}
	for i := range o.BankSamples() {
		s := &o.BankSamples()[i]
		_, err := fmt.Fprintf(w, "bank,%d,%d,0,0,0,0,0,0,0,0,0,0,0,%d,0,0,0,0,0,0,0,0,0\n",
			s.Interval, s.Bank, s.Relocations)
		if err != nil {
			return err
		}
	}
	hist := o.DepthHist()
	for d := range hist {
		if hist[d] == 0 {
			continue
		}
		_, err := fmt.Fprintf(w, "depth,-1,%d,0,0,0,0,0,0,0,0,0,0,0,%d,0,0,0,0,0,0,0,0,0\n",
			d, hist[d])
		if err != nil {
			return err
		}
	}
	return nil
}
