package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"zivsim/internal/analysis/cfg"
)

// buildFunc type-checks src and returns the CFG of function name plus
// the type info needed to resolve identifiers.
func buildFunc(t *testing.T, src, name string) (*cfg.Graph, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return cfg.New(fd.Body), fd, info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil, nil
}

// lookupVar finds the *types.Var that `name := ...` defines inside fd.
func lookupVar(t *testing.T, info *types.Info, fd *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	for id, obj := range info.Defs {
		if id.Name == name && id.Pos() >= fd.Body.Pos() && id.Pos() <= fd.Body.End() {
			if v, ok := obj.(*types.Var); ok {
				return v
			}
		}
	}
	t.Fatalf("var %s not defined in %s", name, fd.Name.Name)
	return nil
}

// taintTransfer is a toy transfer function: an assignment `x = src()`
// taints x with Value; `x = y` copies y's taint; `x = clean()` clears.
func taintTransfer(info *types.Info) func(b *cfg.Block, in Taint) Taint {
	return func(b *cfg.Block, in Taint) Taint {
		out := in.Clone()
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				continue
			}
			var obj types.Object
			if o := info.Defs[id]; o != nil {
				obj = o
			} else {
				obj = info.Uses[id]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			var m Mask
			switch rhs := as.Rhs[0].(type) {
			case *ast.CallExpr:
				if fid, ok := rhs.Fun.(*ast.Ident); ok && fid.Name == "src" {
					m = Value
				}
			case *ast.Ident:
				if rv, ok := info.Uses[rhs].(*types.Var); ok {
					m = out[TaintKey{Var: rv}]
				}
			}
			if out == nil && m != 0 {
				out = Taint{}
			}
			if m != 0 {
				out[TaintKey{Var: v}] = m
			} else if out != nil {
				delete(out, TaintKey{Var: v})
			}
		}
		return out
	}
}

const taintSrc = `package p

func src() int   { return 0 }
func clean() int { return 1 }

func straight() int {
	x := src()
	y := x
	return y
}

func branches(c bool) int {
	x := clean()
	if c {
		x = src()
	}
	y := x
	return y
}

func killed(c bool) int {
	x := src()
	if c {
		x = clean()
	} else {
		x = clean()
	}
	y := x
	return y
}

func loop(n int) int {
	x := clean()
	y := clean()
	for i := 0; i < n; i++ {
		y = x
		x = src()
	}
	return y
}
`

// finalTaint runs the solver and returns the taint of v at the exit
// block's input.
func finalTaint(t *testing.T, fn string, varName string) Mask {
	t.Helper()
	g, fd, info := buildFunc(t, taintSrc, fn)
	ins := Forward[Taint](g, TaintLattice{}, nil, taintTransfer(info))
	v := lookupVar(t, info, fd, varName)
	// The exit block's in-fact joins every return path, but the transfer
	// runs per-block; check the in of exit.
	return ins[g.Exit.Index][TaintKey{Var: v}]
}

func TestForwardStraightLine(t *testing.T) {
	if m := finalTaint(t, "straight", "y"); m != Value {
		t.Errorf("straight: taint(y) = %v, want Value", m)
	}
}

func TestForwardJoinsBranches(t *testing.T) {
	if m := finalTaint(t, "branches", "y"); m != Value {
		t.Errorf("branches: taint(y) = %v, want Value (tainted on one path)", m)
	}
}

func TestForwardKillOnAllPaths(t *testing.T) {
	if m := finalTaint(t, "killed", "y"); m != 0 {
		t.Errorf("killed: taint(y) = %v, want clean (overwritten on every path)", m)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	// y = x happens before x = src() within an iteration, so y only
	// becomes tainted on the second trip — a fixpoint below two
	// iterations would miss it.
	if m := finalTaint(t, "loop", "y"); m != Value {
		t.Errorf("loop: taint(y) = %v, want Value (needs loop fixpoint)", m)
	}
}

func TestMaskHelpers(t *testing.T) {
	if ParamBit(0) != 1 || ParamBit(3) != 8 {
		t.Error("ParamBit bit positions wrong")
	}
	if ParamBit(56) != 0 || ParamBit(-1) != 0 {
		t.Error("ParamBit out-of-range must be 0")
	}
	m := Order | ParamBit(2)
	if m.Params() != ParamBit(2) || m.Sources() != Order {
		t.Errorf("Params/Sources split wrong: %b %b", m.Params(), m.Sources())
	}
	if (Order | Value).String() != "order- and value-nondeterministic" {
		t.Errorf("String() = %q", (Order | Value).String())
	}
}

func TestTaintLatticeEqualTreatsZeroAsAbsent(t *testing.T) {
	v := types.NewVar(token.NoPos, nil, "v", types.Typ[types.Int])
	lat := TaintLattice{}
	if !lat.Equal(Taint{TaintKey{Var: v}: 0}, nil) {
		t.Error("zero-mask entry should equal absent entry")
	}
	if lat.Equal(Taint{TaintKey{Var: v}: Order}, nil) {
		t.Error("nonzero entry should differ from empty")
	}
}
