package policy

// Random implements pseudo-random replacement with a deterministic xorshift
// sequence, so simulations remain reproducible.
type Random struct {
	rankBuf
	sets, ways int
	state      uint64
}

// NewRandom returns a random-replacement policy seeded deterministically.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Random{state: seed}
}

// Name implements Policy.
func (p *Random) Name() string { return "Random" }

// Init implements Policy.
func (p *Random) Init(sets, ways int) {
	p.sets, p.ways = sets, ways
	p.grow(ways)
}

// OnHit implements Policy.
func (p *Random) OnHit(int, int, Meta) {}

// OnFill implements Policy.
func (p *Random) OnFill(int, int, Meta) {}

// OnEvict implements Policy.
func (p *Random) OnEvict(int, int) {}

// OnInvalidate implements Policy.
func (p *Random) OnInvalidate(int, int) {}

func (p *Random) next() uint64 {
	x := p.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.state = x
	return x
}

// Rank implements Policy: a random rotation of the ways.
func (p *Random) Rank(set int) []int {
	out := p.take(p.ways)
	start := int(p.next() % uint64(p.ways))
	for i := 0; i < p.ways; i++ {
		out[i] = (start + i) % p.ways
	}
	return out
}

var _ Policy = (*Random)(nil)

// Promote implements Policy: random replacement keeps no recency state.
func (p *Random) Promote(int, int) {}
