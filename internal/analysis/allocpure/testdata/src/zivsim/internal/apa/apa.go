// Package apa covers allocpure's intra-package sites: literals,
// builtins, closures, interface boxing, local call summaries and the
// panic-path exemption.
package apa

import (
	"fmt"
	"io"
)

// Sum is allocation-free: index loop, scalar accumulation.
//
//ziv:noalloc
func Sum(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// BadMake reaches for make on the steady-state path.
//
//ziv:noalloc
func BadMake(n int) []int {
	return make([]int, n) // want `make allocates in //ziv:noalloc function`
}

// BadNew heap-allocates explicitly.
//
//ziv:noalloc
func BadNew() *int {
	return new(int) // want `new allocates in //ziv:noalloc function`
}

// BadMapLit builds a map literal.
//
//ziv:noalloc
func BadMapLit() map[int]bool {
	return map[int]bool{1: true} // want `map literal allocates in //ziv:noalloc function`
}

// BadSliceLit builds a slice literal.
//
//ziv:noalloc
func BadSliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates in //ziv:noalloc function`
}

type node struct{ v int }

// BadAddrLit takes the address of a composite literal.
//
//ziv:noalloc
func BadAddrLit(v int) *node {
	return &node{v: v} // want `composite literal escapes to the heap in //ziv:noalloc function`
}

// BadAppend may grow its argument.
//
//ziv:noalloc
func BadAppend(xs []int, v int) []int {
	return append(xs, v) // want `append may reallocate in //ziv:noalloc function`
}

// BadClosure returns a closure over a local.
//
//ziv:noalloc
func BadClosure(start int) func() int {
	n := start
	return func() int { // want `escaping closure allocates in //ziv:noalloc function`
		n++
		return n
	}
}

// OKClosures: immediately-invoked and locally-called-only closures stay
// on the stack.
//
//ziv:noalloc
func OKClosures(x int) int {
	y := func() int { return x * 2 }()
	double := func(v int) int { return v + v }
	return double(y)
}

// OKClosureArg passes literals to a locally-called-only closure: the
// callee never escapes, so its func-typed arguments stay on the stack
// too (the victim-scan firstWhere pattern, flattened by the inliner).
//
//ziv:noalloc
func OKClosureArg(xs []int, floor int) int {
	firstWhere := func(pred func(v int) bool) int {
		for i, v := range xs {
			if pred(v) {
				return i
			}
		}
		return -1
	}
	if i := firstWhere(func(v int) bool { return v > floor }); i >= 0 {
		return i
	}
	return firstWhere(func(v int) bool { return v == floor })
}

// BadRangeBody allocates inside a range body: the site must be reported
// exactly once even though the cfg keeps the whole RangeStmt in the
// header block alongside the body's own nodes.
//
//ziv:noalloc
func BadRangeBody(xs []int) []*node {
	var out []*node
	for _, v := range xs {
		out = append(out, &node{v: v}) // want `append may reallocate in //ziv:noalloc function` `composite literal escapes to the heap in //ziv:noalloc function`
	}
	return out
}

// BadBox boxes an integer into an interface.
//
//ziv:noalloc
func BadBox(v int) any {
	return v // want `interface conversion boxes int in //ziv:noalloc function`
}

// OKBox stores a pointer: pointer-shaped values need no boxing.
//
//ziv:noalloc
func OKBox(v *node) any {
	return v
}

// Guarded allocates only on the panic path: error construction on a
// failing invariant is exempt.
//
//ziv:noalloc
func Guarded(xs []int, i int) int {
	if i >= len(xs) {
		panic(fmt.Sprintf("index %d out of range %d", i, len(xs)))
	}
	return xs[i]
}

// Build is an exported helper with an allocation; its summary travels
// to other packages as a fact.
func Build(n int) []int {
	return make([]int, n)
}

// scratch is unexported and allocates; local summaries catch it.
func scratch() []int {
	return make([]int, 8)
}

// BadCall allocates transitively through a local helper.
//
//ziv:noalloc
func BadCall() []int {
	return scratch() // want `call to scratch allocates in //ziv:noalloc function`
}

// Waived keeps a cold-path allocation with an explicit waiver.
//
//ziv:noalloc
func Waived() []int {
	return make([]int, 4) //ziv:ignore(allocpure) cold path, runs once at startup // want:suppressed `make allocates`
}

// BadEscapingBody returns a non-capturing closure: no environment is
// allocated, but the body runs on the caller's hot path, so the make
// inside is attributed to this function.
//
//ziv:noalloc
func BadEscapingBody() func() []int {
	return func() []int {
		return make([]int, 8) // want `make allocates in //ziv:noalloc function`
	}
}

const escGuardLimit = 1 << 20

// OKEscapingGuard's returned closure allocates only on its panic path:
// the body scan rides the closure's own CFG, so the panic exemption
// holds inside escaping closures too.
//
//ziv:noalloc
func OKEscapingGuard() func(int) int {
	return func(v int) int {
		if v > escGuardLimit {
			panic(fmt.Sprintf("overflow %d", v))
		}
		return v * 2
	}
}

// Ranker is a plain interface: dynamic calls join the verdicts of
// every known implementation.
type Ranker interface {
	Rank(xs []int) int
}

// CleanRank ranks without allocating.
type CleanRank struct{}

func (CleanRank) Rank(xs []int) int { return len(xs) }

// DirtyRank scratches a copy first.
type DirtyRank struct{}

func (DirtyRank) Rank(xs []int) int {
	b := make([]int, len(xs))
	copy(b, xs)
	return len(b)
}

// BadDynamic dispatches through Ranker: DirtyRank is a possible callee
// and it allocates, so the dynamic call is charged.
//
//ziv:noalloc
func BadDynamic(r Ranker, xs []int) int {
	return r.Rank(xs) // want `dynamic call to Rank may allocate in //ziv:noalloc function \(\(zivsim/internal/apa\.DirtyRank\)\.Rank allocates\)`
}

// Sizer's only implementation is clean, so dispatching through it is
// clean too — a blanket "dynamic calls may allocate" rule would have
// flagged this.
type Sizer interface {
	Size() int
}

func (CleanRank) Size() int { return 0 }

// OKDynamic joins a verdict set that is all clean.
//
//ziv:noalloc
func OKDynamic(s Sizer) int {
	return s.Size()
}

// Scorer annotates its method //ziv:noalloc: call sites trust the
// contract and every implementation is held to it at its declaration.
type Scorer interface {
	//ziv:noalloc
	Score(x int) int
}

// OKAnnotatedDynamic dispatches through the annotated method: clean at
// the call site even though BadScore allocates.
//
//ziv:noalloc
func OKAnnotatedDynamic(s Scorer, x int) int {
	return s.Score(x)
}

// GoodScore honors the contract.
type GoodScore struct{ base int }

func (g GoodScore) Score(x int) int { return g.base + x }

// BadScore breaks the contract: reported at the declaration, not at
// the dynamic call sites.
type BadScore struct{}

func (BadScore) Score(x int) int { // want `Score allocates but implements //ziv:noalloc interface method Scorer\.Score`
	return len(make([]int, x))
}

// Opaque has no in-module implementation: a verdict joined over zero
// implementations is vacuous, so the dynamic call is surfaced instead
// of silently trusted.
type Opaque interface {
	Touch(x int) int
}

// BadVacuousDynamic dispatches through Opaque with nothing to join.
//
//ziv:noalloc
func BadVacuousDynamic(o Opaque, x int) int {
	return o.Touch(x) // want `dynamic call to Touch joins zero in-module implementations in //ziv:noalloc function`
}

// Sealed also has no implementation yet, but its method carries the
// contract: each future implementation answers for itself at its own
// declaration, so trusting the call site is sound.
type Sealed interface {
	//ziv:noalloc
	Probe(x int) int
}

// OKVacuousAnnotated dispatches through the annotated method: clean.
//
//ziv:noalloc
func OKVacuousAnnotated(s Sealed, x int) int {
	return s.Probe(x)
}

// OKStdlibIface dispatches through an interface defined in a package
// with no alloc summaries in view (the standard library): the empty
// join means the implementations are invisible, not absent, so the
// call is trusted rather than reported as vacuous.
//
//ziv:noalloc
func OKStdlibIface(r io.Reader, buf []byte) int {
	n, _ := r.Read(buf)
	return n
}
