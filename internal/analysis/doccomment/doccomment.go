// Package doccomment enforces the godoc audit of the repository's
// operational packages: in internal/harness, internal/obs,
// internal/telemetry and internal/analysis (the packages OPERATIONS.md
// and docs/cli.md document against), every exported symbol must carry a
// doc comment —
//
//   - the package itself (one package doc comment somewhere in the
//     package);
//   - exported functions, and exported methods on exported receiver
//     types;
//   - exported types;
//   - exported consts and vars (a group doc on the enclosing const/var
//     block covers its specs);
//   - exported fields of exported struct types, which includes every
//     flag-bearing Options field.
//
// A doc comment is either a leading comment (godoc's Doc) or a trailing
// line comment on the same line, the idiom small const/field declarations
// use. Packages outside the audited prefixes are not checked, so the
// simulator core can keep its own documentation conventions. Test files
// are never analyzed. A finding can be waived with
// //ziv:ignore(doccomment) reason.
package doccomment

import (
	"go/ast"
	"go/token"
	"strings"

	"zivsim/internal/analysis/framework"
)

// Analyzer is the doccomment analysis.
var Analyzer = &framework.Analyzer{
	Name: "doccomment",
	Doc:  "flags undocumented exported symbols in the audited packages (harness, obs, telemetry, analysis)",
	Run:  run,
}

// auditedPrefixes are the import-path prefixes whose exported API must be
// fully documented.
var auditedPrefixes = []string{
	"zivsim/internal/harness",
	"zivsim/internal/obs",
	"zivsim/internal/server",
	"zivsim/internal/telemetry",
	"zivsim/internal/analysis",
}

// documents reports whether a comment group actually documents a symbol.
// Analyzer directives (//ziv:ignore, //zivlint:ignore) and fixture
// expectations (// want) are machine-directed, not documentation, so a
// waiver comment alone never satisfies the check.
func documents(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		t := c.Text
		switch {
		case strings.HasPrefix(t, "//ziv:"), strings.HasPrefix(t, "//zivlint:"):
		case strings.HasPrefix(t, "// want"), strings.HasPrefix(t, "//want"):
		default:
			return true
		}
	}
	return false
}

func isAudited(path string) bool {
	for _, p := range auditedPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) (any, error) {
	if !isAudited(pass.PkgPath) {
		return nil, nil
	}
	checkPackageDoc(pass)
	exportedTypes := collectExportedTypes(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d, exportedTypes)
			case *ast.GenDecl:
				checkGenDecl(pass, d)
			}
		}
	}
	return nil, nil
}

// checkPackageDoc requires one package doc comment per package, reported
// at the first file's package clause when absent.
func checkPackageDoc(pass *framework.Pass) {
	if len(pass.Files) == 0 {
		return
	}
	for _, file := range pass.Files {
		if documents(file.Doc) {
			return
		}
	}
	pass.Reportf(pass.Files[0].Package,
		"package %s has no package doc comment; audited packages document their purpose", pass.Pkg.Name())
}

// collectExportedTypes maps the names of exported top-level types, so
// method checks can tell exported receivers from internal ones.
func collectExportedTypes(pass *framework.Pass) map[string]bool {
	out := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// checkFunc flags undocumented exported functions and undocumented
// exported methods whose receiver type is itself exported (methods on
// internal types are internal API regardless of their name).
func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, exportedTypes map[string]bool) {
	if !fn.Name.IsExported() || documents(fn.Doc) {
		return
	}
	if fn.Recv != nil {
		recv := receiverTypeName(fn.Recv)
		if !exportedTypes[recv] {
			return
		}
		pass.Reportf(fn.Name.Pos(),
			"exported method %s.%s has no doc comment", recv, fn.Name.Name)
		return
	}
	pass.Reportf(fn.Name.Pos(), "exported function %s has no doc comment", fn.Name.Name)
}

// receiverTypeName extracts the base type name of a method receiver.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	expr := recv.List[0].Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if idx, ok := expr.(*ast.IndexExpr); ok { // generic receiver T[P]
		expr = idx.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkGenDecl flags undocumented exported types, consts, vars and — for
// exported struct types — their exported fields.
func checkGenDecl(pass *framework.Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !documents(gd.Doc) && !documents(s.Doc) && !documents(s.Comment) {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				checkStructFields(pass, s.Name.Name, st)
			}
		case *ast.ValueSpec:
			if documents(gd.Doc) || documents(s.Doc) || documents(s.Comment) {
				continue
			}
			kind := "var"
			if gd.Tok == token.CONST {
				kind = "const"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
				}
			}
		}
	}
}

// checkStructFields flags undocumented exported fields of an exported
// struct type; embedded fields document themselves through their type.
func checkStructFields(pass *framework.Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if documents(field.Doc) || documents(field.Comment) {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() {
				pass.Reportf(name.Pos(),
					"exported field %s.%s has no doc comment", typeName, name.Name)
			}
		}
	}
}
