// Command zivreport converts the text output of `zivsim -fig ...` into
// GitHub-flavoured markdown tables, for pasting into EXPERIMENTS.md or
// issue reports, and renders/validates the observability artifacts of
// `zivsim -obs-*`.
//
//	zivsim -fig all > results.txt
//	zivreport results.txt > results.md
//	zivreport -obs obsout/I-LRU-256KB-hetero.00.intervals.csv > intervals.md
//	zivreport -checktrace obsout        # validate every *.trace.json
//	zivreport -ledger run.ndjson        # summarize a telemetry run ledger
//	zivreport -checkmetrics metrics.prom # validate a scraped /metrics exposition
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	obsCSV := flag.String("obs", "", "render an intervals CSV (from zivsim -obs-interval) as markdown")
	checkPath := flag.String("checktrace", "", "validate Chrome trace JSON: a file, or a directory of *.trace.json")
	ledgerPath := flag.String("ledger", "", "summarize a telemetry run ledger (from zivsim -ledger) as markdown")
	metricsPath := flag.String("checkmetrics", "", "validate a Prometheus text exposition (scraped from zivsim /metrics)")
	flag.Parse()

	switch {
	case *ledgerPath != "":
		if err := ledgerReport(*ledgerPath, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "zivreport:", err)
			os.Exit(1)
		}
	case *metricsPath != "":
		if err := checkMetrics(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "zivreport:", err)
			os.Exit(1)
		}
	case *obsCSV != "":
		f, err := os.Open(*obsCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zivreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := obsReport(f, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "zivreport:", err)
			os.Exit(1)
		}
	case *checkPath != "":
		n, err := checkTraces(*checkPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zivreport:", err)
			os.Exit(1)
		}
		fmt.Printf("checktrace: %d trace(s) ok\n", n)
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: zivreport [-obs intervals.csv | -checktrace path | results.txt]")
			os.Exit(2)
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "zivreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := convert(f, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "zivreport:", err)
			os.Exit(1)
		}
	}
}

// convert renders zivsim table output from r as markdown onto w.
func convert(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cols []string
	inTable := false
	var notes []string
	flushNotes := func() {
		if len(notes) > 0 {
			fmt.Fprintln(w)
			for _, n := range notes {
				fmt.Fprintf(w, "- %s\n", n)
			}
			notes = notes[:0]
		}
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "== ") && strings.HasSuffix(line, " =="):
			flushNotes()
			title := strings.TrimSuffix(strings.TrimPrefix(line, "== "), " ==")
			fmt.Fprintf(w, "\n### %s\n\n", title)
			inTable = true
			cols = nil
		case inTable && cols == nil && strings.TrimSpace(line) != "":
			cols = strings.Fields(line)
			fmt.Fprintf(w, "| %s | %s |\n", "configuration", strings.Join(cols, " | "))
			fmt.Fprintf(w, "|%s\n", strings.Repeat("---|", len(cols)+1))
		case strings.HasPrefix(line, "note: "):
			notes = append(notes, strings.TrimPrefix(line, "note: "))
		case strings.HasPrefix(line, "("):
			inTable = false
			flushNotes()
		case inTable && strings.TrimSpace(line) != "":
			fields := strings.Fields(line)
			if len(fields) <= len(cols) {
				// Label may contain no spaces in our tables; values follow.
				continue
			}
			label := strings.Join(fields[:len(fields)-len(cols)], " ")
			fmt.Fprintf(w, "| %s | %s |\n", label, strings.Join(fields[len(fields)-len(cols):], " | "))
		}
	}
	flushNotes()
	return sc.Err()
}
