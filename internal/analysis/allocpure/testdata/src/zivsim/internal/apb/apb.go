// Package apb is the consumer side of allocpure's fixtures: the
// allocation summary of apa.Build arrives as an imported fact.
package apb

import "zivsim/internal/apa"

// BadCrossCall allocates through another package's helper.
//
//ziv:noalloc
func BadCrossCall() []int {
	return apa.Build(16) // want `call to Build allocates in //ziv:noalloc function`
}

// OKCrossCall uses a summarized-clean function.
//
//ziv:noalloc
func OKCrossCall(xs []int) int {
	return apa.Sum(xs)
}
