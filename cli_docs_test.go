package zivsim

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

// updateCLIDocs regenerates the help blocks in docs/cli.md instead of
// comparing against them:
//
//	go test -run TestCLIDocsInSync -update-cli-docs .
var updateCLIDocs = flag.Bool("update-cli-docs", false, "rewrite the -help blocks in docs/cli.md")

const cliDocsPath = "docs/cli.md"

// cliCommands are the commands documented in docs/cli.md, in file order.
var cliCommands = []string{"zivsim", "zivsimd", "zivbench", "zivreport", "zivlint", "zivtrace"}

// usageLine matches flag's default header, which embeds the temp binary
// path that `go run` builds ("Usage of /tmp/go-build…/exe/zivsim:").
var usageLine = regexp.MustCompile(`(?m)^Usage of \S*?([a-z]+):$`)

// helpOutput runs `go run ./cmd/<name> -help` and returns its combined
// output with the build-dependent binary path normalized away. -help is
// expected to exit nonzero (flag uses status 2); only failures to run the
// command at all are fatal.
func helpOutput(t *testing.T, name string) string {
	t.Helper()
	cmd := exec.Command("go", "run", "./cmd/"+name, "-help")
	out, err := cmd.CombinedOutput()
	if err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("go run ./cmd/%s -help: %v\n%s", name, err, out)
		}
	}
	text := usageLine.ReplaceAllString(string(out), "Usage of $1:")
	if !strings.HasSuffix(text, "\n") {
		text += "\n"
	}
	return text
}

// spliceHelp replaces the fenced block between the help markers for one
// command, returning an error if the markers are missing or malformed.
func spliceHelp(doc, name, help string) (string, error) {
	open := fmt.Sprintf("<!-- help:%s -->", name)
	clo := fmt.Sprintf("<!-- /help:%s -->", name)
	i := strings.Index(doc, open)
	if i < 0 {
		return "", fmt.Errorf("marker %q not found", open)
	}
	j := strings.Index(doc[i:], clo)
	if j < 0 {
		return "", fmt.Errorf("marker %q not found after %q", clo, open)
	}
	j += i
	block := open + "\n```text\n" + help + "```\n"
	return doc[:i] + block + doc[j:], nil
}

// extractHelp returns the current contents of a command's fenced help
// block in the doc.
func extractHelp(doc, name string) (string, error) {
	open := fmt.Sprintf("<!-- help:%s -->", name)
	clo := fmt.Sprintf("<!-- /help:%s -->", name)
	i := strings.Index(doc, open)
	if i < 0 {
		return "", fmt.Errorf("marker %q not found", open)
	}
	rest := doc[i+len(open):]
	j := strings.Index(rest, clo)
	if j < 0 {
		return "", fmt.Errorf("marker %q not found after %q", clo, open)
	}
	block := rest[:j]
	k := strings.Index(block, "```text\n")
	if k < 0 {
		return "", fmt.Errorf("no ```text fence inside %q block", name)
	}
	block = block[k+len("```text\n"):]
	end := strings.LastIndex(block, "```")
	if end < 0 {
		return "", fmt.Errorf("unterminated fence inside %q block", name)
	}
	return block[:end], nil
}

// TestCLIDocsInSync keeps docs/cli.md's embedded -help output identical
// to what the commands actually print, so the CLI reference cannot drift
// from the flags. Run with -update-cli-docs to regenerate after a flag
// change.
func TestCLIDocsInSync(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every command via go run; skipped in -short mode")
	}
	raw, err := os.ReadFile(cliDocsPath)
	if err != nil {
		t.Fatalf("read %s: %v", cliDocsPath, err)
	}
	doc := string(raw)

	if *updateCLIDocs {
		for _, name := range cliCommands {
			doc, err = spliceHelp(doc, name, helpOutput(t, name))
			if err != nil {
				t.Fatalf("%s: %v", cliDocsPath, err)
			}
		}
		if err := os.WriteFile(cliDocsPath, []byte(doc), 0o644); err != nil {
			t.Fatalf("write %s: %v", cliDocsPath, err)
		}
		return
	}

	for _, name := range cliCommands {
		want := helpOutput(t, name)
		got, err := extractHelp(doc, name)
		if err != nil {
			t.Errorf("%s: %v", cliDocsPath, err)
			continue
		}
		if got != want {
			t.Errorf("%s: help block for %s is stale; regenerate with\n\tgo test -run TestCLIDocsInSync -update-cli-docs .\ngot:\n%s\nwant:\n%s",
				cliDocsPath, name, got, want)
		}
	}
}
