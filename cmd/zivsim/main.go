// Command zivsim runs the paper-reproduction experiments: one experiment per
// figure of the ZIV paper's evaluation (Figs. 1-4 and 8-19).
//
// Examples:
//
//	zivsim -list                 # show available experiments
//	zivsim -fig fig8             # reproduce Fig. 8 at laptop scale
//	zivsim -fig all -csv         # everything, CSV output
//	zivsim -fig fig11 -scale 1 -mixes 36 -homo 36   # paper-fidelity run
//	zivsim -fig all -cache       # persist results; reruns are instant
//	zivsim -fig all -checkpoint .zivcheckpoint      # journal completed jobs
//	zivsim -fig all -resume      # skip jobs finished before an interrupt
//	zivsim -fig fig8 -cpuprofile cpu.pb.gz          # profile the run
//	zivsim -fig fig1 -obs-interval 5000 -obs-events 4096 -obs-out obsout
//	                             # per-run Perfetto traces, event dumps, interval CSVs
//	zivsim -fig all -progress    # live run counter + ETA on stderr
//	zivsim -fig all -telemetry-addr :9464 -ledger run.ndjson -sweep-trace sweep.trace.json
//	                             # /metrics + /healthz + pprof, run ledger, sweep timeline
//	zivsim -config               # print the simulated machine (Table I)
//
// Long sweeps are fault-isolated: a panic in one simulation fails that
// job only (after -retries attempts) and the sweep continues. SIGINT or
// SIGTERM triggers a graceful drain — dispatching stops, in-flight jobs
// finish (bounded by -job-deadline), completed work is flushed to the
// checkpoint and observability artifacts — and a second signal exits
// immediately. See OPERATIONS.md for the runbook.
//
// Exit codes: 0 success; 2 usage error; 3 the sweep completed but at
// least one job failed (a failed-job report is printed to stderr); 4 the
// sweep was interrupted and drained (resume with -resume); 1 other
// runtime errors (profile files etc.).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"zivsim/internal/harness"
	"zivsim/internal/hierarchy"
	"zivsim/internal/sigwatch"
	"zivsim/internal/telemetry"
)

// Exit codes; documented in OPERATIONS.md and docs/cli.md.
const (
	exitOK          = 0
	exitError       = 1
	exitUsage       = 2
	exitFailedJobs  = 3
	exitInterrupted = 4
)

func main() {
	os.Exit(run())
}

// run parses flags, executes the requested experiments and returns the
// process exit code. It exists (rather than doing everything in main) so
// deferred profile/trace finalizers run before os.Exit.
func run() int {
	var (
		figID     = flag.String("fig", "", "experiment to run (fig1..fig19, or 'all')")
		list      = flag.Bool("list", false, "list available experiments")
		showCfg   = flag.Bool("config", false, "print the simulated machine configuration (Table I)")
		scale     = flag.Int("scale", 8, "capacity divisor for every cache (1 = paper's full-size machine)")
		cores     = flag.Int("cores", 8, "core count for multi-programmed experiments")
		hetero    = flag.Int("mixes", 4, "number of heterogeneous mixes (paper: 36)")
		homo      = flag.Int("homo", 4, "number of homogeneous mixes (paper: 36)")
		warmup    = flag.Int("warmup", 30000, "warm-up references per core")
		refs      = flag.Int("refs", 120000, "measured references per core")
		tpceCores = flag.Int("tpce-cores", 32, "core count for the TPC-E experiment (paper: 128)")
		seed      = flag.Uint64("seed", 20210614, "deterministic seed")
		par       = flag.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		paper     = flag.Bool("paper", false, "paper-fidelity options (slow; overrides scale/mixes/refs)")

		useCache    = flag.Bool("cache", false, "persist simulation results under -cachedir and reuse them")
		cacheDir    = flag.String("cachedir", ".zivcache", "directory for the persistent result cache")
		checkpoint  = flag.String("checkpoint", "", "journal completed jobs to this sweep checkpoint file (empty = off)")
		resume      = flag.Bool("resume", false, "skip jobs recorded in the checkpoint file (default .zivcheckpoint; implies -checkpoint)")
		retries     = flag.Int("retries", 2, "attempts per job before it is recorded as failed")
		jobDeadline = flag.Duration("job-deadline", 0, "after an interrupt, how long to wait for in-flight jobs (0 = until they finish)")
		faultspec   = flag.String("faultspec", "", "deterministic fault injection for testing, e.g. 'panic:KEY@1;drain-after:3' (see OPERATIONS.md)")
		obsIval     = flag.Uint64("obs-interval", 0, "sample machine counters every N simulated cycles (0 = off)")
		obsEvents   = flag.Int("obs-events", 0, "capture the last N simulator events per run (0 = off)")
		obsOut      = flag.String("obs-out", "obsout", "directory for observability artifacts (trace/NDJSON/CSV)")
		obsMaxIv    = flag.Int("obs-max-intervals", 4096, "max sampled intervals per run")
		progress    = flag.Bool("progress", false, "live run progress on stderr")
		telAddr     = flag.String("telemetry-addr", "", "serve /metrics, /healthz and /debug/pprof on this address for the duration of the run (empty = off)")
		telLinger   = flag.Duration("telemetry-linger", 0, "keep the telemetry endpoint serving this long after the sweep finishes (interrupt to stop early)")
		ledgerPath  = flag.String("ledger", "", "append one NDJSON record per job attempt to this run-ledger file (see zivreport -ledger)")
		sweepTrace  = flag.String("sweep-trace", "", "write the sweep's per-job lifecycle timeline as Chrome trace JSON to this file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceFile   = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zivsim: -cpuprofile: %v\n", err)
			return exitError
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "zivsim: -cpuprofile: %v\n", err)
			return exitError
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zivsim: -trace: %v\n", err)
			return exitError
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "zivsim: -trace: %v\n", err)
			return exitError
		}
		defer trace.Stop()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "zivsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "zivsim: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return exitOK
	}
	if *showCfg {
		printConfig(*cores, *scale)
		return exitOK
	}
	if *figID == "" {
		fmt.Fprintln(os.Stderr, "usage: zivsim -fig <id>|all  (see -list)")
		return exitUsage
	}
	if err := harness.ParseFaultSpec(*faultspec); err != nil {
		fmt.Fprintf(os.Stderr, "zivsim: -faultspec: %v\n", err)
		return exitUsage
	}

	opt := harness.DefaultOptions()
	if *paper {
		opt = harness.PaperOptions()
	} else {
		opt.Scale = *scale
		opt.Cores = *cores
		opt.HeteroMixes = *hetero
		opt.HomoMixes = *homo
		opt.Warmup = *warmup
		opt.Measure = *refs
		opt.TPCECores = *tpceCores
		opt.Seed = *seed
	}
	opt.Parallelism = *par
	if *useCache {
		opt.CacheDir = *cacheDir
	}
	opt.MaxAttempts = *retries
	opt.FaultSpec = *faultspec
	opt.CheckpointFile = *checkpoint
	opt.Resume = *resume
	if *resume && opt.CheckpointFile == "" {
		opt.CheckpointFile = ".zivcheckpoint"
	}
	if *obsIval > 0 || *obsEvents > 0 {
		opt.Obs = &harness.ObsOptions{
			IntervalCycles: *obsIval,
			MaxIntervals:   *obsMaxIv,
			EventCapacity:  *obsEvents,
			OutDir:         *obsOut,
		}
	}
	var prog *harness.Progress
	if *progress {
		prog = harness.NewProgress(os.Stderr, time.Now)
		opt.Progress = prog
	}

	// Graceful drain: the first SIGINT/SIGTERM stops dispatching and arms
	// the -job-deadline timer; in-flight simulations finish (or are
	// abandoned at the deadline) and completed work is flushed. A second
	// signal exits immediately with the conventional 130.
	drain := harness.NewDrain()
	opt.Drain = drain
	sigwatch.Watch("zivsim: interrupt — draining (in-flight jobs finish; interrupt again to exit now)",
		*jobDeadline, drain.Expire, drain.Request)

	// Telemetry: metrics registry + HTTP endpoint, per-job spans, run
	// ledger (see OPERATIONS.md). The server goroutine is spawned and
	// joined here: its defer runs last (defers are LIFO), so the ledger
	// is closed and the sweep trace written before the endpoint lingers
	// and shuts down — a final scrape during -telemetry-linger sees the
	// finished sweep with all artifacts already on disk.
	var telReg *telemetry.Registry
	if *telAddr != "" {
		telReg = telemetry.NewRegistry()
		ln, err := net.Listen("tcp", *telAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zivsim: -telemetry-addr: %v\n", err)
			return exitError
		}
		tsrv := telemetry.NewServer(telReg)
		served := make(chan struct{})
		go func() {
			if err := tsrv.Serve(ln); err != nil {
				fmt.Fprintf(os.Stderr, "zivsim: telemetry server: %v\n", err)
			}
			close(served)
		}()
		fmt.Fprintf(os.Stderr, "zivsim: telemetry on http://%s/metrics\n", ln.Addr())
		defer func() {
			if *telLinger > 0 && !drain.Requested() {
				fmt.Fprintf(os.Stderr, "zivsim: telemetry lingering %v (interrupt to stop)\n", *telLinger)
				deadline := time.Now().Add(*telLinger)
				for time.Now().Before(deadline) && !drain.Requested() {
					time.Sleep(50 * time.Millisecond)
				}
			}
			tsrv.Close()
			<-served
		}()
	}
	if telReg != nil || *ledgerPath != "" || *sweepTrace != "" {
		var telSpans *telemetry.SpanRecorder
		if *sweepTrace != "" {
			telSpans = telemetry.NewSpanRecorder(time.Now)
			path, label := *sweepTrace, "zivsim -fig "+*figID
			defer func() {
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "zivsim: -sweep-trace: %v\n", err)
					return
				}
				defer f.Close()
				if err := telSpans.WriteSweepTrace(f, label); err != nil {
					fmt.Fprintf(os.Stderr, "zivsim: -sweep-trace: %v\n", err)
				}
			}()
		}
		var telLedger *telemetry.Ledger
		if *ledgerPath != "" {
			var err error
			telLedger, err = telemetry.CreateLedger(*ledgerPath, opt.IdentityHash())
			if err != nil {
				fmt.Fprintf(os.Stderr, "zivsim: -ledger: %v\n", err)
				return exitError
			}
			defer telLedger.Close()
		}
		opt.Telemetry = telemetry.NewSink(time.Now, telReg, telSpans, telLedger)
	}

	if _, err := harness.ResolveFigs([]string{*figID}); err != nil {
		fmt.Fprintf(os.Stderr, "zivsim: unknown experiment %q (see -list)\n", *figID)
		return exitUsage
	}

	// The sweep itself lives in the harness library (RunSweep); this
	// front end only streams each finished figure to the terminal.
	start := time.Now()
	onFigure := func(fr harness.FigureResult) {
		if prog != nil {
			prog.Finish()
		}
		if fr.Err != "" {
			fmt.Fprintf(os.Stderr, "zivsim: experiment %s panicked: %v\n", fr.ID, fr.Err)
			start = time.Now()
			return
		}
		if *csv {
			fmt.Print(fr.Table.CSV())
		} else {
			fmt.Print(fr.Table.Format())
			fmt.Printf("(%s in %v)\n\n", fr.ID, time.Since(start).Round(time.Millisecond))
		}
		start = time.Now()
	}
	rep, err := harness.RunSweep(harness.Request{
		Figs:     []string{*figID},
		Options:  opt,
		OnFigure: onFigure,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "zivsim: %v\n", err)
		return exitUsage
	}

	st := rep.Status
	if drain.Requested() {
		fmt.Fprintf(os.Stderr, "zivsim: interrupted: %d job(s) completed (%d cached, %d from checkpoint), %d failed, %d skipped\n",
			st.Completed, st.CacheHits, st.CheckpointHits, len(st.Failed), len(st.Skipped))
		if opt.CheckpointFile != "" {
			fmt.Fprintf(os.Stderr, "zivsim: completed jobs are journaled in %s; rerun with -resume -checkpoint %s to continue\n",
				opt.CheckpointFile, opt.CheckpointFile)
		} else {
			fmt.Fprintln(os.Stderr, "zivsim: no checkpoint was configured; rerun with -checkpoint to make sweeps resumable")
		}
		return exitInterrupted
	}
	if len(st.Failed) > 0 || rep.Panics() > 0 {
		reportFailures(st, rep.Panics())
		return exitFailedJobs
	}
	return exitOK
}

// reportFailures prints the failed-job report: one summary line per job
// plus an indented stack, so a failure in an overnight sweep is
// diagnosable from the log alone.
func reportFailures(st harness.SweepStatus, experimentPanics int) {
	fmt.Fprintf(os.Stderr, "zivsim: %d job(s) failed (%d completed)\n", len(st.Failed), st.Completed)
	for _, f := range st.Failed {
		fmt.Fprintf(os.Stderr, "  FAILED %s\n", f)
		for _, line := range strings.Split(strings.TrimRight(f.Stack, "\n"), "\n") {
			fmt.Fprintf(os.Stderr, "    %s\n", line)
		}
	}
	if experimentPanics > 0 {
		fmt.Fprintf(os.Stderr, "zivsim: %d experiment(s) aborted outside the job runner (see panics above)\n", experimentPanics)
	}
	fmt.Fprintln(os.Stderr, "zivsim: rerun with -resume -checkpoint <file> to retry only the failed jobs (see OPERATIONS.md)")
}

// printConfig echoes the simulated machine parameters (the paper's Table I)
// for each L2 configuration.
func printConfig(cores, scale int) {
	fmt.Printf("Simulated CMP (scale 1/%d of the paper's machine)\n\n", scale)
	for _, l2 := range []int{256 << 10, 512 << 10, 768 << 10} {
		cfg := hierarchy.DefaultConfig(cores, l2, scale)
		fmt.Printf("L2 %dKB configuration:\n", l2>>10)
		fmt.Printf("  cores:            %d (x86-like trace-driven, 4 GHz)\n", cfg.Cores)
		fmt.Printf("  L1D:              %d KB, %d-way, LRU, %d-cycle\n", cfg.L1Bytes>>10, cfg.L1Ways, cfg.L1Latency)
		fmt.Printf("  L2:               %d KB, %d-way, LRU, %d-cycle\n", cfg.L2Bytes>>10, cfg.L2Ways, cfg.L2Latency)
		fmt.Printf("  LLC:              %d MB total, %d banks, %d-way, tag %d + data %d cycles\n",
			cfg.LLCBytes>>20, cfg.LLCBanks, cfg.LLCWays, cfg.LLCTagLat, cfg.LLCDataLat)
		fmt.Printf("  sparse directory: %.2gx, %d-way, NRU\n", cfg.DirFactor, cfg.DirWays)
		fmt.Printf("  relocated access: +%d cycles\n", cfg.RelocAccessDelta)
		fmt.Printf("  memory:           %d ch DDR3-2133, %d ranks, %d banks, %dB rows\n\n",
			cfg.Mem.Channels, cfg.Mem.Ranks, cfg.Mem.Banks, cfg.Mem.RowBytes)
	}
}
